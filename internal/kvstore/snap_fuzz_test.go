package kvstore

import (
	"bytes"
	"testing"
)

// FuzzSnapshot checks the snapshot frame's integrity contract on arbitrary
// input: openSnapshot never panics; a framed image with any byte changed is
// rejected wholesale (ok=false) or falls to the legacy path where replay
// must stop short of the damaged byte — either way Open quarantines, and a
// damaged image can never replay to a record sequence that is not a strict
// prefix of the original.
func FuzzSnapshot(f *testing.F) {
	base, _ := fuzzBaseLog()
	framed := appendSnapshotCRC(append(append([]byte(nil), snapMagic...), base...))
	f.Add([]byte{}, uint16(0), byte(0))
	f.Add(append([]byte(nil), snapMagic...), uint16(0), byte(0))
	f.Add(append([]byte(nil), framed...), uint16(0), byte(1))
	f.Add(append([]byte(nil), framed...), uint16(3), byte(0x80)) // damage inside the magic
	f.Add(append([]byte(nil), framed...), uint16(uint16(len(framed)-1)), byte(0x40))
	f.Add(append([]byte(nil), base...), uint16(5), byte(0)) // legacy raw stream
	f.Fuzz(func(t *testing.T, data []byte, pos uint16, xor byte) {
		collect := func(data []byte) []fuzzRec {
			var out []fuzzRec
			replay(data, func(op byte, key string, val []byte) {
				out = append(out, fuzzRec{op, key, string(val)})
			})
			return out
		}

		// Arbitrary bytes: clean termination, coherent result. A verified
		// frame must round-trip its payload through replay without panic.
		payload, ok, legacy := openSnapshot(data)
		if ok && !legacy {
			collect(payload)
		}

		// A well-formed frame opens, and one damaged byte never slips
		// through: it either fails the frame CRC outright, or (when the
		// damage hits the magic itself) demotes the image to legacy, where
		// replay must refuse to consume it to the end — the condition Open
		// uses to quarantine legacy images wholesale.
		base, want := fuzzBaseLog()
		framed := appendSnapshotCRC(append(append([]byte(nil), snapMagic...), base...))
		payload, ok, legacy = openSnapshot(framed)
		if !ok || legacy || !bytes.Equal(payload, base) {
			t.Fatalf("pristine frame rejected: ok=%t legacy=%t", ok, legacy)
		}
		if xor == 0 {
			return
		}
		corrupt := append([]byte(nil), framed...)
		corrupt[int(pos)%len(corrupt)] ^= xor
		payload, ok, legacy = openSnapshot(corrupt)
		switch {
		case ok && !legacy:
			t.Fatalf("damaged frame (byte %d xor %#x) passed verification", int(pos)%len(framed), xor)
		case ok && legacy:
			var got []fuzzRec
			n, consumed := replayConsumed(payload, func(op byte, key string, val []byte) {
				got = append(got, fuzzRec{op, key, string(val)})
			})
			if consumed == len(payload) {
				t.Fatalf("damaged frame (byte %d xor %#x) replayed as legacy to its last byte", int(pos)%len(framed), xor)
			}
			// Whatever partial records did apply must be a prefix of the
			// original sequence — a mangled record never applies.
			if n > len(want) {
				t.Fatalf("legacy replay applied %d records, original had %d", n, len(want))
			}
			for i, r := range got {
				if r != want[i] {
					t.Fatalf("legacy replay applied mangled record %d: %+v != %+v", i, r, want[i])
				}
			}
		}
	})
}

// TestSnapshotMagicDamageQuarantines pins the wholesale-quarantine path:
// a framed store snapshot whose magic bytes are damaged must not be
// trusted as a legacy record stream — Open quarantines it and comes up
// empty rather than replaying a torn prefix.
func TestSnapshotMagicDamageQuarantines(t *testing.T) {
	be := NewMemBackend()
	s, err := Open(be, "q", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b", "c"} {
		if err := s.Put(k, []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	snap, err := be.ReadAll("q.snap")
	if err != nil || len(snap) == 0 {
		t.Fatalf("no snapshot written: %v", err)
	}
	snap[0] ^= 0xff // destroy the magic, leave the payload plausible
	if err := be.Replace("q.snap", snap); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(be, "q", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Stats().SnapQuarantined {
		t.Fatal("magic-damaged snapshot was not quarantined")
	}
	for _, k := range []string{"a", "b", "c"} {
		if _, ok := s2.Get(k); ok {
			t.Fatalf("key %q served from a quarantined snapshot", k)
		}
	}
}
