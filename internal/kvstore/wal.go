package kvstore

import (
	"encoding/binary"
	"hash/crc32"
)

// WAL record format (little-endian):
//
//	[1B op] [4B keyLen] [key] [4B valLen] [val] [4B crc32c of the above]
//
// A torn tail (partial record or bad CRC) terminates replay without error:
// everything before it is applied, mirroring a redo log recovering from a
// power failure (the paper requires DMT changes to "survive power
// failures", §III.D).

// crcTable is the CRC-32C (Castagnoli) polynomial, chosen over IEEE for its
// better burst-error detection; it guards every WAL record and the snapshot
// frame so torn writes and bit rot are detected rather than replayed.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

const (
	opPut byte = 1
	opDel byte = 2
	// opBatch frames an atomic group: its value is a concatenation of
	// sub-records applied together on replay.
	opBatch byte = 3
)

// recordSize returns the encoded length of one record.
func recordSize(key string, val []byte) int {
	return 1 + 4 + len(key) + 4 + len(val) + 4
}

// appendRecord appends one encoded record to dst and returns the extended
// slice. It allocates only when dst lacks capacity, so callers on the
// commit hot path can reuse a scratch buffer across records.
func appendRecord(dst []byte, op byte, key string, val []byte) []byte {
	start := len(dst)
	dst = append(dst, op)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(key)))
	dst = append(dst, key...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(val)))
	dst = append(dst, val...)
	crc := crc32.Checksum(dst[start:], crcTable)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

func encodeRecord(op byte, key string, val []byte) []byte {
	return appendRecord(make([]byte, 0, recordSize(key, val)), op, key, val)
}

// decodeRecord parses one record at the front of data. It returns the
// consumed byte count, or ok=false if the data is truncated or corrupt.
func decodeRecord(data []byte) (op byte, key string, val []byte, n int, ok bool) {
	if len(data) < 1+4 {
		return 0, "", nil, 0, false
	}
	op = data[0]
	if op != opPut && op != opDel && op != opBatch {
		return 0, "", nil, 0, false
	}
	pos := 1
	keyLen := int(binary.LittleEndian.Uint32(data[pos:]))
	pos += 4
	if keyLen < 0 || len(data) < pos+keyLen+4 {
		return 0, "", nil, 0, false
	}
	key = string(data[pos : pos+keyLen])
	pos += keyLen
	valLen := int(binary.LittleEndian.Uint32(data[pos:]))
	pos += 4
	if valLen < 0 || len(data) < pos+valLen+4 {
		return 0, "", nil, 0, false
	}
	val = append([]byte(nil), data[pos:pos+valLen]...)
	pos += valLen
	wantCRC := binary.LittleEndian.Uint32(data[pos:])
	if crc32.Checksum(data[:pos], crcTable) != wantCRC {
		return 0, "", nil, 0, false
	}
	pos += 4
	return op, key, val, pos, true
}

// maxBatchDepth bounds opBatch nesting during replay. The writer only ever
// frames put/del records inside a batch (depth 1), so anything deeper is a
// corrupt or adversarial log; the cap keeps replay from recursing down an
// unbounded chain of nested batch frames.
const maxBatchDepth = 8

// replay applies every intact record in data to apply, stopping silently at
// the first torn or corrupt record. Batch records are unpacked and their
// sub-records applied (the batch CRC already guaranteed integrity). It
// returns the number of applied leaf records.
func replay(data []byte, apply func(op byte, key string, val []byte)) int {
	count, _ := replayConsumed(data, apply)
	return count
}

// replayConsumed is replay plus the byte offset of the first torn or corrupt
// top-level record — everything past consumed is garbage the log's owner may
// truncate away so that later appends start on a record boundary.
func replayConsumed(data []byte, apply func(op byte, key string, val []byte)) (count, consumed int) {
	for len(data) > 0 {
		op, key, val, n, ok := decodeRecord(data)
		if !ok {
			break
		}
		if op == opBatch {
			count += replayDepth(val, apply, 1)
		} else {
			apply(op, key, val)
			count++
		}
		consumed += n
		data = data[n:]
	}
	return count, consumed
}

func replayDepth(data []byte, apply func(op byte, key string, val []byte), depth int) int {
	count := 0
	for len(data) > 0 {
		op, key, val, n, ok := decodeRecord(data)
		if !ok {
			break
		}
		if op == opBatch {
			if depth >= maxBatchDepth {
				// Deeper nesting than the writer can produce: treat it like a
				// corrupt record and stop replaying this frame.
				break
			}
			count += replayDepth(val, apply, depth+1)
		} else {
			apply(op, key, val)
			count++
		}
		data = data[n:]
	}
	return count
}

// Snapshot frame: [8B magic] [record stream] [4B crc32c of magic+stream].
// The whole-file checksum catches damage anywhere in the snapshot — a torn
// rename, a flipped bit in a key that an individual record CRC would only
// catch at that record, truncation — and lets Open quarantine the entire
// snapshot rather than trust a prefix of it. Snapshots written before the
// frame existed (no magic) replay as a raw record stream.
var snapMagic = []byte("S4DSNAP\x01")

const snapFrameOverhead = 12 // 8B magic + 4B trailer CRC

// appendSnapshotCRC seals a snapshot buffer that already starts with
// snapMagic by appending the whole-frame checksum.
func appendSnapshotCRC(snap []byte) []byte {
	return binary.LittleEndian.AppendUint32(snap, crc32.Checksum(snap, crcTable))
}

// openSnapshot validates a snapshot file image. It returns the record
// stream payload and ok=true when the frame checks out; legacy=true (with
// the full image as payload) for pre-frame snapshots; ok=false when the
// frame is present but damaged — the caller must quarantine the whole file.
func openSnapshot(data []byte) (payload []byte, ok, legacy bool) {
	if len(data) < len(snapMagic) || string(data[:len(snapMagic)]) != string(snapMagic) {
		return data, true, true
	}
	if len(data) < snapFrameOverhead {
		return nil, false, false
	}
	body := data[: len(data)-4 : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, crcTable) != want {
		return nil, false, false
	}
	return body[len(snapMagic):], true, false
}
