package kvstore

import (
	"fmt"
	"testing"
)

func TestBatchCommitAppliesAll(t *testing.T) {
	b := NewMemBackend()
	s, _ := Open(b, "dmt", Options{})
	batch := s.NewBatch()
	batch.Put("a", []byte("1"))
	batch.Put("b", []byte("2"))
	batch.Delete("missing")
	if batch.Len() != 3 {
		t.Fatalf("Len = %d", batch.Len())
	}
	if err := batch.Commit(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("store has %d keys", s.Len())
	}
	v, ok := s.Get("b")
	if !ok || string(v) != "2" {
		t.Fatal("batched put missing")
	}
	// Batch survives crash/reopen.
	s2, err := Open(b, "dmt", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("recovered %d keys", s2.Len())
	}
	if s2.Stats().RecoveredRecords != 3 {
		t.Fatalf("recovered %d leaf records, want 3", s2.Stats().RecoveredRecords)
	}
}

func TestBatchAtomicUnderTornTail(t *testing.T) {
	b := NewMemBackend()
	s, _ := Open(b, "dmt", Options{})
	if err := s.Put("before", []byte("x")); err != nil {
		t.Fatal(err)
	}
	batch := s.NewBatch()
	for i := 0; i < 10; i++ {
		batch.Put(fmt.Sprintf("k%d", i), []byte("v"))
	}
	if err := batch.Commit(); err != nil {
		t.Fatal(err)
	}
	// Tear the WAL inside the batch record: the whole batch must vanish,
	// the earlier put must survive.
	wal, _ := b.ReadAll("dmt.wal")
	b.Truncate("dmt.wal", len(wal)-20)
	s2, err := Open(b, "dmt", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("recovered %d keys, want 1 (half-applied batch?)", s2.Len())
	}
	if _, ok := s2.Get("before"); !ok {
		t.Fatal("pre-batch put lost")
	}
}

func TestBatchEmptyCommitNoop(t *testing.T) {
	b := NewMemBackend()
	s, _ := Open(b, "dmt", Options{})
	if err := s.NewBatch().Commit(); err != nil {
		t.Fatal(err)
	}
	wal, _ := b.ReadAll("dmt.wal")
	if len(wal) != 0 {
		t.Fatal("empty batch wrote to the WAL")
	}
}

func TestBatchDeleteAndOverwrite(t *testing.T) {
	b := NewMemBackend()
	s, _ := Open(b, "dmt", Options{})
	if err := s.Put("k", []byte("old")); err != nil {
		t.Fatal(err)
	}
	batch := s.NewBatch()
	batch.Delete("k")
	batch.Put("k", []byte("new"))
	if err := batch.Commit(); err != nil {
		t.Fatal(err)
	}
	v, ok := s.Get("k")
	if !ok || string(v) != "new" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	// Order within the batch matters on replay too.
	s2, _ := Open(b, "dmt", Options{})
	v, ok = s2.Get("k")
	if !ok || string(v) != "new" {
		t.Fatalf("recovered Get = %q,%v", v, ok)
	}
}

func TestBatchFailurePropagates(t *testing.T) {
	b := NewMemBackend()
	s, _ := Open(b, "dmt", Options{})
	batch := s.NewBatch()
	batch.Put("k", []byte("v"))
	b.FailAppends = true
	if err := batch.Commit(); err == nil {
		t.Fatal("commit on failing backend succeeded")
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("failed batch visible in memory")
	}
}

func TestBatchCompactionRoundTrip(t *testing.T) {
	b := NewMemBackend()
	s, _ := Open(b, "dmt", Options{})
	batch := s.NewBatch()
	for i := 0; i < 20; i++ {
		batch.Put(fmt.Sprintf("k%02d", i), []byte{byte(i)})
	}
	if err := batch.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(b, "dmt", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 20 {
		t.Fatalf("post-compact recovery: %d keys", s2.Len())
	}
}
