package kvstore

import "fmt"

// Batch is an atomic group of mutations: either every operation in the
// batch survives a crash, or none does. The batch is framed as a single
// WAL record (opBatch) whose payload is the concatenated sub-records, so
// a torn tail can never apply half a batch. Berkeley DB offers the same
// through transactions; the DMT uses batches for multi-fragment mapping
// updates.
type Batch struct {
	store   *Store
	payload []byte
	count   int
	ops     []logRecord
}

type logRecord struct {
	op  byte
	key string
	val []byte
}

// NewBatch starts an empty batch against the store.
func (s *Store) NewBatch() *Batch {
	return &Batch{store: s}
}

// Put queues a put.
func (b *Batch) Put(key string, val []byte) {
	b.payload = appendRecord(b.payload, opPut, key, val)
	b.ops = append(b.ops, logRecord{op: opPut, key: key, val: append([]byte(nil), val...)})
	b.count++
}

// Delete queues a delete.
func (b *Batch) Delete(key string) {
	b.payload = appendRecord(b.payload, opDel, key, nil)
	b.ops = append(b.ops, logRecord{op: opDel, key: key})
	b.count++
}

// Len returns the number of queued operations.
func (b *Batch) Len() int { return b.count }

// Commit atomically applies the batch. An empty batch is a no-op. The
// batch must not be reused after Commit.
//
// Every shard the batch touches is locked (in index order, so concurrent
// batches cannot deadlock) for the duration of the commit; single-key
// writers in other shards are unaffected. A batch committed concurrently
// with other writers may be grouped by the commit leader, nesting its
// opBatch record inside the group's frame — replay unpacks nested frames.
func (b *Batch) Commit() error {
	if b.count == 0 {
		return nil
	}
	s := b.store
	var touched [numShards]bool
	for _, op := range b.ops {
		touched[shardIndex(op.key)] = true
	}
	for i := range s.shards {
		if touched[i] {
			s.shards[i].mu.Lock()
		}
	}
	defer func() {
		for i := range s.shards {
			if touched[i] {
				s.shards[i].mu.Unlock()
			}
		}
	}()

	w := newWaiter()
	w.buf = appendRecord(w.buf, opBatch, "", b.payload)
	if err := s.commitRecord(w); err != nil {
		return fmt.Errorf("kvstore: batch commit: %w", err)
	}
	for _, op := range b.ops {
		sh := &s.shards[shardIndex(op.key)]
		switch op.op {
		case opPut:
			sh.data[op.key] = op.val
			sh.puts++
		case opDel:
			delete(sh.data, op.key)
			sh.dels++
		}
	}
	b.payload = nil
	b.ops = nil
	b.count = 0
	return nil
}
