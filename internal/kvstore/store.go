package kvstore

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// SyncMode selects commit durability.
type SyncMode int

const (
	// SyncEvery makes every mutation durable before returning — the
	// paper's choice: "changes to the mapping table are synchronously
	// written to the storage in order to survive power failures" (§III.D).
	// Concurrent committers are merged by a group commit (see
	// groupcommit.go): a committer still never returns before its record
	// is durable, but one WAL append can carry a whole group.
	SyncEvery SyncMode = iota + 1
	// SyncBatched buffers mutations and flushes them on Flush/Compact/
	// Close, trading durability for latency (used by ablations).
	SyncBatched
)

// Options configures a Store.
type Options struct {
	// Sync selects the commit mode; the zero value means SyncEvery.
	Sync SyncMode
	// CommitHook, if non-nil, observes the byte size of every durable
	// append. The S4D core uses it to charge DMT persistence I/O to the
	// simulated CServers. The hook runs under the store's WAL mutex, so
	// invocations are serialized even with concurrent committers.
	CommitHook func(bytes int)
}

// numShards stripes the key space. Must be a power of two.
const numShards = 16

// shard is one lock stripe of the store: a slice of the key space with
// its own mutex, so operations on keys in different shards never contend.
// The shard mutex is held for the full duration of a mutation — encode,
// group commit, apply — which keeps per-key WAL order identical to
// per-key apply order (recovery then always reproduces the live state).
type shard struct {
	mu   sync.RWMutex
	data map[string][]byte
	// cow marks a copy-on-write snapshot in progress: Compact has cloned
	// this shard's map and still shares the value slices, so overwrites
	// must allocate fresh slices instead of reusing old capacity in place.
	cow bool
	// free recycles commit waiters for this shard's mutations. It is only
	// touched under mu (a committer holds its shard lock across the whole
	// commit), so no extra synchronization is needed.
	free []*commitWaiter

	// puts and dels are guarded by mu (write lock); gets is atomic because
	// lookups only hold the read lock.
	puts, dels uint64
	gets       atomic.Uint64
}

// shardIndex hashes a key to its lock stripe (FNV-1a, allocation-free).
func shardIndex(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return h & (numShards - 1)
}

// Store is a durable hash-table key-value store, sharded by key hash for
// concurrent access. Durability flows through a single write-ahead log
// fed by a leader/follower group commit.
type Store struct {
	backend Backend
	name    string
	// walFile and snapFile are the derived backend names, computed once so
	// the commit hot path does not concatenate strings per append.
	walFile  string
	snapFile string
	opts     Options
	locks    *LockManager

	shards [numShards]shard

	// Group-commit state (groupcommit.go). queue holds waiters whose
	// records the next leader will drain; qspare is the ping-pong buffer
	// that lets queue swaps reuse capacity; leading marks an active leader.
	qmu     sync.Mutex
	queue   []*commitWaiter
	qspare  []*commitWaiter
	leading bool
	// frameBuf and frameScratch are leader-only scratch for building a
	// multi-record group frame; leaders are serialized, so one pair per
	// store is safe.
	frameBuf     []byte
	frameScratch []byte

	// walMu serializes WAL appends against each other and against the
	// compaction swap. side captures, in append order, every frame
	// committed while a background snapshot is being written (sideActive),
	// so the snapshot can be brought forward to the swap point.
	walMu      sync.Mutex
	sideActive bool
	side       []byte

	// pendMu guards the SyncBatched buffer.
	pendMu  sync.Mutex
	pending []byte

	// compactMu serializes Compact calls.
	compactMu sync.Mutex

	walBytes       atomic.Int64
	groupCommits   atomic.Uint64
	groupedRecords atomic.Uint64
	recovered      int
	// tornWALBytes counts trailing WAL garbage truncated away at Open (a
	// mid-write crash); snapQuarantined marks a snapshot whose whole-frame
	// CRC failed at Open, so recovery continued from the WAL alone.
	tornWALBytes    int64
	snapQuarantined bool
}

// walName and snapName derive the backend file names of a store.
func walName(name string) string  { return name + ".wal" }
func snapName(name string) string { return name + ".snap" }

// Open loads (or creates) the named store on backend: the snapshot is read
// first, then the write-ahead log is replayed over it.
func Open(backend Backend, name string, opts Options) (*Store, error) {
	if backend == nil {
		return nil, fmt.Errorf("kvstore: backend is required")
	}
	if opts.Sync == 0 {
		opts.Sync = SyncEvery
	}
	s := &Store{
		backend:  backend,
		name:     name,
		walFile:  walName(name),
		snapFile: snapName(name),
		opts:     opts,
		locks:    NewLockManager(),
	}
	for i := range s.shards {
		s.shards[i].data = make(map[string][]byte)
	}
	snap, err := backend.ReadAll(snapName(name))
	if err != nil {
		return nil, fmt.Errorf("kvstore: read snapshot: %w", err)
	}
	payload, ok, legacy := openSnapshot(snap)
	switch {
	case ok && !legacy:
		replay(payload, s.applyRecord)
	case ok && legacy:
		// Pre-frame snapshot: no whole-file checksum, but a well-formed one
		// replays to its last byte. Anything short of that — including a
		// framed snapshot whose magic itself was damaged — is quarantined
		// wholesale, never trusted as a prefix.
		if _, consumed := replayConsumed(payload, s.applyRecord); consumed < len(payload) {
			for i := range s.shards {
				s.shards[i].data = make(map[string][]byte)
			}
			s.snapQuarantined = true
		}
	default:
		// Damaged frame: quarantine the whole snapshot — a prefix of a
		// corrupt snapshot could silently miss keys that later WAL records
		// assume exist. The store still opens and replays the WAL; the
		// caller sees the quarantine in Stats and recovers degraded.
		s.snapQuarantined = true
	}
	wal, err := backend.ReadAll(walName(name))
	if err != nil {
		return nil, fmt.Errorf("kvstore: read wal: %w", err)
	}
	count, consumed := replayConsumed(wal, s.applyRecord)
	s.recovered = count
	if consumed < len(wal) {
		// A torn tail from a mid-write crash (or mid-log corruption).
		// Truncate it away so the next append starts on a record boundary:
		// appending after garbage would strand every later record behind
		// bytes replay refuses to cross.
		s.tornWALBytes = int64(len(wal) - consumed)
		if err := backend.Replace(s.walFile, wal[:consumed]); err != nil {
			return nil, fmt.Errorf("kvstore: truncate torn wal tail: %w", err)
		}
	}
	return s, nil
}

// applyRecord routes one replayed record to its shard. Only used during
// Open, which runs before any concurrent access.
func (s *Store) applyRecord(op byte, key string, val []byte) {
	sh := &s.shards[shardIndex(key)]
	switch op {
	case opPut:
		sh.data[key] = val
	case opDel:
		delete(sh.data, key)
	}
}

// Put stores val under key. With SyncEvery the call does not return until
// the record is durable.
func (s *Store) Put(key string, val []byte) error {
	sh := &s.shards[shardIndex(key)]
	sh.mu.Lock()
	sh.puts++
	w := sh.getWaiter()
	w.buf = appendRecord(w.buf[:0], opPut, key, val)
	if err := s.commitRecord(w); err != nil {
		sh.putWaiter(w)
		sh.mu.Unlock()
		return err
	}
	if old, ok := sh.data[key]; ok && !sh.cow && cap(old) >= len(val) {
		// Overwrite in place: reuse the existing value slice. Forbidden
		// while a copy-on-write snapshot shares it (cow).
		sh.data[key] = append(old[:0], val...)
	} else {
		sh.data[key] = append([]byte(nil), val...)
	}
	sh.putWaiter(w)
	sh.mu.Unlock()
	return nil
}

// Get returns the value for key and whether it exists. The returned slice
// is a copy.
func (s *Store) Get(key string) ([]byte, bool) {
	sh := &s.shards[shardIndex(key)]
	sh.mu.RLock()
	sh.gets.Add(1)
	v, ok := sh.data[key]
	if !ok {
		sh.mu.RUnlock()
		return nil, false
	}
	out := append([]byte(nil), v...)
	sh.mu.RUnlock()
	return out, true
}

// Delete removes key; deleting a missing key is a no-op.
func (s *Store) Delete(key string) error {
	sh := &s.shards[shardIndex(key)]
	sh.mu.Lock()
	sh.dels++
	if _, ok := sh.data[key]; !ok {
		sh.mu.Unlock()
		return nil
	}
	w := sh.getWaiter()
	w.buf = appendRecord(w.buf[:0], opDel, key, nil)
	if err := s.commitRecord(w); err != nil {
		sh.putWaiter(w)
		sh.mu.Unlock()
		return err
	}
	delete(sh.data, key)
	sh.putWaiter(w)
	sh.mu.Unlock()
	return nil
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.data)
		sh.mu.RUnlock()
	}
	return n
}

// Keys returns all keys with the given prefix, sorted.
func (s *Store) Keys(prefix string) []string {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k := range sh.data {
			if strings.HasPrefix(k, prefix) {
				out = append(out, k)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Scan calls fn for every key/value with the given prefix, in sorted key
// order. The value slice must not be retained.
func (s *Store) Scan(prefix string, fn func(key string, val []byte) bool) {
	for _, k := range s.Keys(prefix) {
		sh := &s.shards[shardIndex(k)]
		sh.mu.RLock()
		v, ok := sh.data[k]
		sh.mu.RUnlock()
		if !ok {
			continue
		}
		if !fn(k, v) {
			return
		}
	}
}

// Flush forces buffered (SyncBatched) mutations to the backend.
func (s *Store) Flush() error {
	s.pendMu.Lock()
	rec := s.pending
	s.pending = nil
	s.pendMu.Unlock()
	if len(rec) == 0 {
		return nil
	}
	return s.appendFrame(rec)
}

// Compact writes a full snapshot and truncates the write-ahead log. Only
// the caller waits: concurrent readers and writers proceed while the
// snapshot is encoded. The shards are cloned copy-on-write under their
// stripes (cheap — map headers and shared value slices), and every frame
// committed during the encode is captured in a side log that is appended
// to the snapshot before the swap, so the snapshot always lands at the
// swap point's state.
func (s *Store) Compact() error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	if err := s.Flush(); err != nil {
		return err
	}

	// Start the side capture before cloning: a frame committed after this
	// point lands in the side log; one committed before a shard's clone is
	// also reflected in the clone, and replaying it again is idempotent
	// (records carry absolute values and the side log preserves order).
	s.walMu.Lock()
	s.sideActive = true
	s.side = s.side[:0]
	s.walMu.Unlock()

	// Copy-on-write clone of every shard. The clone shares value slices
	// with the live map; cow makes writers allocate instead of mutating
	// them in place until the swap completes.
	type kv struct {
		key string
		val []byte
	}
	var entries []kv
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, v := range sh.data {
			entries = append(entries, kv{k, v})
		}
		sh.cow = true
		sh.mu.Unlock()
	}
	defer func() {
		for i := range s.shards {
			sh := &s.shards[i]
			sh.mu.Lock()
			sh.cow = false
			sh.mu.Unlock()
		}
	}()

	// Encode the snapshot off every lock: writers proceed.
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	total := 0
	for _, e := range entries {
		total += recordSize(e.key, e.val)
	}
	snap := make([]byte, 0, total+snapFrameOverhead)
	snap = append(snap, snapMagic...)
	for _, e := range entries {
		snap = appendRecord(snap, opPut, e.key, e.val)
	}

	// Swap: bring the snapshot forward with the side log, seal the frame
	// with its whole-file CRC, install it, and truncate the WAL. Appends
	// are excluded for the swap's duration only.
	s.walMu.Lock()
	defer s.walMu.Unlock()
	snap = append(snap, s.side...)
	snap = appendSnapshotCRC(snap)
	s.sideActive = false
	s.side = s.side[:0]
	if err := s.backend.Replace(s.snapFile, snap); err != nil {
		return fmt.Errorf("kvstore: compact: %w", err)
	}
	if err := s.backend.Remove(s.walFile); err != nil {
		return fmt.Errorf("kvstore: truncate wal: %w", err)
	}
	s.walBytes.Store(0)
	return nil
}

// Close flushes pending mutations. The store must not be used afterwards.
func (s *Store) Close() error { return s.Flush() }

// Locks returns the store's per-key lock manager (the paper leverages
// Berkeley DB "to perform metadata operations and address lock
// contentions", §III.D).
func (s *Store) Locks() *LockManager { return s.locks }

// StoreStats is a snapshot of store counters.
type StoreStats struct {
	Puts, Gets, Deletes uint64
	Keys                int
	WALBytes            int64
	RecoveredRecords    int
	// TornWALBytes is the trailing garbage truncated from the WAL at Open;
	// SnapQuarantined reports a snapshot rejected wholesale by its frame CRC.
	TornWALBytes    int64
	SnapQuarantined bool
	// GroupCommits counts durable WAL frames written by group-commit
	// leaders; GroupedRecords counts the committer records they carried.
	// Equal when every commit ran alone (the single-threaded simulation);
	// GroupedRecords/GroupCommits is the mean group size under load.
	GroupCommits   uint64
	GroupedRecords uint64
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() StoreStats {
	st := StoreStats{
		WALBytes:         s.walBytes.Load(),
		RecoveredRecords: s.recovered,
		TornWALBytes:     s.tornWALBytes,
		SnapQuarantined:  s.snapQuarantined,
		GroupCommits:     s.groupCommits.Load(),
		GroupedRecords:   s.groupedRecords.Load(),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		st.Puts += sh.puts
		st.Gets += sh.gets.Load()
		st.Deletes += sh.dels
		st.Keys += len(sh.data)
		sh.mu.RUnlock()
	}
	return st
}

// commitRecord makes one waiter's encoded record durable according to the
// sync mode. Called with the waiter's shard lock (or, for batches, every
// involved shard lock) held.
func (s *Store) commitRecord(w *commitWaiter) error {
	if s.opts.Sync == SyncBatched {
		s.pendMu.Lock()
		s.pending = append(s.pending, w.buf...)
		s.pendMu.Unlock()
		return nil
	}
	return s.groupCommit(w)
}

// appendFrame durably appends one WAL frame, feeding the compaction side
// log and the commit hook under the WAL mutex.
func (s *Store) appendFrame(frame []byte) error {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if err := s.backend.Append(s.walFile, frame); err != nil {
		return fmt.Errorf("kvstore: wal append: %w", err)
	}
	s.walBytes.Add(int64(len(frame)))
	if s.sideActive {
		s.side = append(s.side, frame...)
	}
	if s.opts.CommitHook != nil {
		s.opts.CommitHook(len(frame))
	}
	return nil
}
