package kvstore

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// SyncMode selects commit durability.
type SyncMode int

const (
	// SyncEvery makes every mutation durable before returning — the
	// paper's choice: "changes to the mapping table are synchronously
	// written to the storage in order to survive power failures" (§III.D).
	SyncEvery SyncMode = iota + 1
	// SyncBatched buffers mutations and flushes them on Flush/Compact/
	// Close, trading durability for latency (used by ablations).
	SyncBatched
)

// Options configures a Store.
type Options struct {
	// Sync selects the commit mode; the zero value means SyncEvery.
	Sync SyncMode
	// CommitHook, if non-nil, observes the byte size of every durable
	// append. The S4D core uses it to charge DMT persistence I/O to the
	// simulated CServers.
	CommitHook func(bytes int)
}

// Store is a durable hash-table key-value store.
type Store struct {
	mu      sync.Mutex
	backend Backend
	name    string
	opts    Options
	data    map[string][]byte
	pending []byte
	locks   *LockManager
	// enc is the reusable record-encode scratch for the commit path; both
	// backends copy on Append, so the buffer never escapes the lock.
	enc []byte

	// Stats.
	puts, gets, dels uint64
	walBytes         int64
	recovered        int
}

// walName and snapName derive the backend file names of a store.
func walName(name string) string  { return name + ".wal" }
func snapName(name string) string { return name + ".snap" }

// Open loads (or creates) the named store on backend: the snapshot is read
// first, then the write-ahead log is replayed over it.
func Open(backend Backend, name string, opts Options) (*Store, error) {
	if backend == nil {
		return nil, fmt.Errorf("kvstore: backend is required")
	}
	if opts.Sync == 0 {
		opts.Sync = SyncEvery
	}
	s := &Store{
		backend: backend,
		name:    name,
		opts:    opts,
		data:    make(map[string][]byte),
		locks:   NewLockManager(),
	}
	snap, err := backend.ReadAll(snapName(name))
	if err != nil {
		return nil, fmt.Errorf("kvstore: read snapshot: %w", err)
	}
	replay(snap, s.applyLocked)
	wal, err := backend.ReadAll(walName(name))
	if err != nil {
		return nil, fmt.Errorf("kvstore: read wal: %w", err)
	}
	s.recovered = replay(wal, s.applyLocked)
	return s, nil
}

func (s *Store) applyLocked(op byte, key string, val []byte) {
	switch op {
	case opPut:
		s.data[key] = val
	case opDel:
		delete(s.data, key)
	}
}

// Put stores val under key.
func (s *Store) Put(key string, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	s.enc = appendRecord(s.enc[:0], opPut, key, val)
	if err := s.commitLocked(s.enc); err != nil {
		return err
	}
	s.data[key] = append([]byte(nil), val...)
	return nil
}

// Get returns the value for key and whether it exists. The returned slice
// is a copy.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets++
	v, ok := s.data[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Delete removes key; deleting a missing key is a no-op.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dels++
	if _, ok := s.data[key]; !ok {
		return nil
	}
	s.enc = appendRecord(s.enc[:0], opDel, key, nil)
	if err := s.commitLocked(s.enc); err != nil {
		return err
	}
	delete(s.data, key)
	return nil
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}

// Keys returns all keys with the given prefix, sorted.
func (s *Store) Keys(prefix string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.data))
	for k := range s.data {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Scan calls fn for every key/value with the given prefix, in sorted key
// order. The value slice must not be retained.
func (s *Store) Scan(prefix string, fn func(key string, val []byte) bool) {
	for _, k := range s.Keys(prefix) {
		s.mu.Lock()
		v, ok := s.data[k]
		s.mu.Unlock()
		if !ok {
			continue
		}
		if !fn(k, v) {
			return
		}
	}
}

// Flush forces buffered (SyncBatched) mutations to the backend.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

// Compact writes a full snapshot and truncates the write-ahead log.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flushLocked(); err != nil {
		return err
	}
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0
	for _, k := range keys {
		total += recordSize(k, s.data[k])
	}
	snap := make([]byte, 0, total)
	for _, k := range keys {
		snap = appendRecord(snap, opPut, k, s.data[k])
	}
	if err := s.backend.Replace(snapName(s.name), snap); err != nil {
		return fmt.Errorf("kvstore: compact: %w", err)
	}
	if err := s.backend.Remove(walName(s.name)); err != nil {
		return fmt.Errorf("kvstore: truncate wal: %w", err)
	}
	s.walBytes = 0
	return nil
}

// Close flushes pending mutations. The store must not be used afterwards.
func (s *Store) Close() error { return s.Flush() }

// Locks returns the store's per-key lock manager (the paper leverages
// Berkeley DB "to perform metadata operations and address lock
// contentions", §III.D).
func (s *Store) Locks() *LockManager { return s.locks }

// StoreStats is a snapshot of store counters.
type StoreStats struct {
	Puts, Gets, Deletes uint64
	Keys                int
	WALBytes            int64
	RecoveredRecords    int
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Puts: s.puts, Gets: s.gets, Deletes: s.dels,
		Keys: len(s.data), WALBytes: s.walBytes, RecoveredRecords: s.recovered,
	}
}

func (s *Store) commitLocked(rec []byte) error {
	if s.opts.Sync == SyncBatched {
		s.pending = append(s.pending, rec...)
		return nil
	}
	return s.appendLocked(rec)
}

func (s *Store) flushLocked() error {
	if len(s.pending) == 0 {
		return nil
	}
	rec := s.pending
	s.pending = nil
	return s.appendLocked(rec)
}

func (s *Store) appendLocked(rec []byte) error {
	if err := s.backend.Append(walName(s.name), rec); err != nil {
		return fmt.Errorf("kvstore: wal append: %w", err)
	}
	s.walBytes += int64(len(rec))
	if s.opts.CommitHook != nil {
		s.opts.CommitHook(len(rec))
	}
	return nil
}
