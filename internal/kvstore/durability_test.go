package kvstore

import (
	"bytes"
	"fmt"
	"testing"
)

// TestOpenTruncatesTornTail pins the mid-write-crash fix: a torn trailing
// record is physically truncated at Open (and reported), so records appended
// by the reopened store land on a record boundary and survive the next
// recovery instead of being stranded behind garbage.
func TestOpenTruncatesTornTail(t *testing.T) {
	b := NewMemBackend()
	s, err := Open(b, "dmt", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte{byte(i)}, 50)); err != nil {
			t.Fatal(err)
		}
	}
	wal, _ := b.ReadAll("dmt.wal")
	b.Truncate("dmt.wal", len(wal)-17) // tear the last record mid-write

	s2, err := Open(b, "dmt", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 9 {
		t.Fatalf("recovered %d keys after torn tail, want 9", s2.Len())
	}
	if got := s2.Stats().TornWALBytes; got <= 0 {
		t.Fatalf("TornWALBytes = %d, want > 0", got)
	}
	truncated, _ := b.ReadAll("dmt.wal")
	if len(truncated) >= len(wal)-17 {
		t.Fatalf("wal still %d bytes, torn tail not truncated (pre-tear %d)", len(truncated), len(wal))
	}

	// The regression: appends after the torn tail must be recoverable.
	if err := s2.Put("after-crash", []byte("durable")); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(b, "dmt", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s3.Get("after-crash"); !ok || string(v) != "durable" {
		t.Fatalf("record appended after torn tail lost: %q, %v", v, ok)
	}
	if s3.Len() != 10 {
		t.Fatalf("recovered %d keys, want 10", s3.Len())
	}
	if s3.Stats().TornWALBytes != 0 {
		t.Fatalf("second reopen reports torn bytes %d on a clean log", s3.Stats().TornWALBytes)
	}
}

// TestSnapshotFrame pins the snapshot integrity frame: Compact writes
// magic + records + whole-file CRC32C, and Open replays it.
func TestSnapshotFrame(t *testing.T) {
	b := NewMemBackend()
	s, _ := Open(b, "dmt", Options{})
	for i := 0; i < 20; i++ {
		if err := s.Put(fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	snap, _ := b.ReadAll("dmt.snap")
	if len(snap) < snapFrameOverhead || !bytes.HasPrefix(snap, snapMagic) {
		t.Fatalf("snapshot missing frame: %d bytes, prefix %x", len(snap), snap[:minInt(8, len(snap))])
	}
	s2, err := Open(b, "dmt", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 20 {
		t.Fatalf("recovered %d keys from framed snapshot, want 20", s2.Len())
	}
	if st := s2.Stats(); st.SnapQuarantined {
		t.Fatal("clean snapshot reported quarantined")
	}
}

// TestCorruptSnapshotQuarantined proves a damaged snapshot is rejected
// wholesale — the store still opens, serves, and recovers whatever the WAL
// holds, with the quarantine visible in stats. Never a wrong answer, never
// a startup failure.
func TestCorruptSnapshotQuarantined(t *testing.T) {
	b := NewMemBackend()
	s, _ := Open(b, "dmt", Options{})
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("old%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("post-snap", []byte("wal-only")); err != nil {
		t.Fatal(err)
	}

	snap, _ := b.ReadAll("dmt.snap")
	for _, flip := range []int{9, len(snap) / 2, len(snap) - 1} {
		mangled := append([]byte(nil), snap...)
		mangled[flip] ^= 0x10
		if err := b.Replace("dmt.snap", mangled); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(b, "dmt", Options{})
		if err != nil {
			t.Fatalf("flip %d: corrupt snapshot failed open: %v", flip, err)
		}
		if !s2.Stats().SnapQuarantined {
			t.Fatalf("flip %d: quarantine not reported", flip)
		}
		// Snapshot-era keys are gone (quarantined, a safe miss); WAL-era
		// keys survive intact.
		if _, ok := s2.Get("old3"); ok {
			t.Fatalf("flip %d: key served from quarantined snapshot", flip)
		}
		if v, ok := s2.Get("post-snap"); !ok || string(v) != "wal-only" {
			t.Fatalf("flip %d: WAL record lost behind corrupt snapshot: %q, %v", flip, v, ok)
		}
	}
}

// TestLegacySnapshotReplay keeps pre-frame snapshots readable: a raw record
// stream without the magic header replays as before.
func TestLegacySnapshotReplay(t *testing.T) {
	b := NewMemBackend()
	var raw []byte
	raw = appendRecord(raw, opPut, "legacy", []byte("snapshot"))
	if err := b.Replace("dmt.snap", raw); err != nil {
		t.Fatal(err)
	}
	s, err := Open(b, "dmt", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get("legacy"); !ok || string(v) != "snapshot" {
		t.Fatalf("legacy snapshot not replayed: %q, %v", v, ok)
	}
	if s.Stats().SnapQuarantined {
		t.Fatal("legacy snapshot reported quarantined")
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
