package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGetDelete(t *testing.T) {
	s, err := Open(NewMemBackend(), "dmt", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ok := s.Get("k1")
	if !ok || string(v) != "v1" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	if err := s.Delete("k1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k1"); ok {
		t.Fatal("key survived Delete")
	}
	if err := s.Delete("missing"); err != nil {
		t.Fatalf("deleting missing key: %v", err)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s, _ := Open(NewMemBackend(), "s", Options{})
	if err := s.Put("k", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	v, _ := s.Get("k")
	v[0] = 'X'
	v2, _ := s.Get("k")
	if string(v2) != "abc" {
		t.Fatal("Get exposed internal buffer")
	}
}

func TestPutCopiesValue(t *testing.T) {
	s, _ := Open(NewMemBackend(), "s", Options{})
	val := []byte("abc")
	if err := s.Put("k", val); err != nil {
		t.Fatal(err)
	}
	val[0] = 'X'
	v, _ := s.Get("k")
	if string(v) != "abc" {
		t.Fatal("Put retained caller buffer")
	}
}

func TestRecoveryFromWAL(t *testing.T) {
	b := NewMemBackend()
	s, _ := Open(b, "dmt", Options{})
	for i := 0; i < 100; i++ {
		if err := s.Put(fmt.Sprintf("key%03d", i), []byte(fmt.Sprintf("val%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete("key050"); err != nil {
		t.Fatal(err)
	}
	// Reopen: "crash" without Close.
	s2, err := Open(b, "dmt", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 99 {
		t.Fatalf("recovered %d keys, want 99", s2.Len())
	}
	v, ok := s2.Get("key042")
	if !ok || string(v) != "val42" {
		t.Fatalf("recovered key042 = %q,%v", v, ok)
	}
	if _, ok := s2.Get("key050"); ok {
		t.Fatal("deleted key resurrected after recovery")
	}
	if s2.Stats().RecoveredRecords != 101 {
		t.Fatalf("RecoveredRecords = %d, want 101", s2.Stats().RecoveredRecords)
	}
}

func TestRecoveryIgnoresTornTail(t *testing.T) {
	b := NewMemBackend()
	s, _ := Open(b, "dmt", Options{})
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	wal, _ := b.ReadAll("dmt.wal")
	b.Truncate("dmt.wal", len(wal)-37) // tear the last record
	s2, err := Open(b, "dmt", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 9 {
		t.Fatalf("recovered %d keys after torn tail, want 9", s2.Len())
	}
}

func TestRecoveryRejectsCorruptCRC(t *testing.T) {
	b := NewMemBackend()
	s, _ := Open(b, "dmt", Options{})
	if err := s.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	wal, _ := b.ReadAll("dmt.wal")
	// Flip a byte inside the first record's value.
	wal[7] ^= 0xff
	if err := b.Replace("dmt.wal", wal); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(b, "dmt", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// First record corrupt → replay stops immediately; nothing recovered.
	if s2.Len() != 0 {
		t.Fatalf("recovered %d keys from corrupt log, want 0", s2.Len())
	}
}

func TestCompactPreservesDataAndTruncatesWAL(t *testing.T) {
	b := NewMemBackend()
	s, _ := Open(b, "dmt", Options{})
	for i := 0; i < 50; i++ {
		if err := s.Put(fmt.Sprintf("k%02d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	wal, _ := b.ReadAll("dmt.wal")
	if len(wal) != 0 {
		t.Fatalf("wal has %d bytes after compact, want 0", len(wal))
	}
	s2, err := Open(b, "dmt", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 50 {
		t.Fatalf("post-compact reopen has %d keys, want 50", s2.Len())
	}
}

func TestBatchedModeBuffersUntilFlush(t *testing.T) {
	b := NewMemBackend()
	s, _ := Open(b, "dmt", Options{Sync: SyncBatched})
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	wal, _ := b.ReadAll("dmt.wal")
	if len(wal) != 0 {
		t.Fatal("batched put hit the backend before Flush")
	}
	// A crash now loses the put.
	s2, _ := Open(b, "dmt", Options{})
	if s2.Len() != 0 {
		t.Fatal("unflushed batched put survived crash — not batched")
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s3, _ := Open(b, "dmt", Options{})
	if s3.Len() != 1 {
		t.Fatal("flushed put did not survive")
	}
}

func TestSyncEveryDurableImmediately(t *testing.T) {
	b := NewMemBackend()
	s, _ := Open(b, "dmt", Options{Sync: SyncEvery})
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	s2, _ := Open(b, "dmt", Options{})
	if s2.Len() != 1 {
		t.Fatal("SyncEvery put not durable without Close")
	}
}

func TestCommitHookObservesBytes(t *testing.T) {
	var total int
	s, _ := Open(NewMemBackend(), "dmt", Options{CommitHook: func(n int) { total += n }})
	if err := s.Put("key", []byte("value")); err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("commit hook not called")
	}
	want := len(encodeRecord(opPut, "key", []byte("value")))
	if total != want {
		t.Fatalf("hook saw %d bytes, want %d", total, want)
	}
}

func TestAppendFailureSurfaces(t *testing.T) {
	b := NewMemBackend()
	s, _ := Open(b, "dmt", Options{})
	b.FailAppends = true
	if err := s.Put("k", []byte("v")); err == nil {
		t.Fatal("backend failure swallowed")
	}
	// The in-memory map must not contain the failed put.
	if _, ok := s.Get("k"); ok {
		t.Fatal("failed put visible in memory")
	}
}

func TestKeysAndScan(t *testing.T) {
	s, _ := Open(NewMemBackend(), "dmt", Options{})
	for _, k := range []string{"dmt/b", "dmt/a", "cdt/x"} {
		if err := s.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	keys := s.Keys("dmt/")
	if len(keys) != 2 || keys[0] != "dmt/a" || keys[1] != "dmt/b" {
		t.Fatalf("Keys = %v", keys)
	}
	var seen []string
	s.Scan("dmt/", func(k string, v []byte) bool {
		seen = append(seen, k)
		return true
	})
	if len(seen) != 2 {
		t.Fatalf("Scan visited %v", seen)
	}
	// Early stop.
	count := 0
	s.Scan("", func(k string, v []byte) bool { count++; return false })
	if count != 1 {
		t.Fatalf("Scan early-stop visited %d, want 1", count)
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(nil, "x", Options{}); err == nil {
		t.Fatal("nil backend accepted")
	}
}

func TestDirBackendRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b, err := NewDirBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(b, "dmt", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("persistent", []byte("yes")); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("after-compact", []byte("also")); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(b, "dmt", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("dir-backed reopen has %d keys, want 2", s2.Len())
	}
	if err := b.Remove("dmt.wal"); err != nil {
		t.Fatal(err)
	}
	if err := b.Remove("dmt.wal"); err != nil {
		t.Fatal("double remove should be a no-op")
	}
}

// Property: after any sequence of puts/deletes and a crash-reopen, the
// recovered store equals a plain map reference model.
func TestRecoveryMatchesModelProperty(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := int(opsRaw%60) + 1
		b := NewMemBackend()
		s, err := Open(b, "dmt", Options{})
		if err != nil {
			return false
		}
		ref := make(map[string]string)
		for i := 0; i < ops; i++ {
			key := fmt.Sprintf("k%d", rng.Intn(20))
			if rng.Intn(4) == 0 {
				if s.Delete(key) != nil {
					return false
				}
				delete(ref, key)
				continue
			}
			val := fmt.Sprintf("v%d", rng.Int63())
			if s.Put(key, []byte(val)) != nil {
				return false
			}
			ref[key] = val
		}
		// Crash: reopen from backend bytes only.
		s2, err := Open(b, "dmt", Options{})
		if err != nil {
			return false
		}
		if s2.Len() != len(ref) {
			return false
		}
		for k, want := range ref {
			v, ok := s2.Get(k)
			if !ok || string(v) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s, _ := Open(NewMemBackend(), "dmt", Options{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i)
				if err := s.Put(key, []byte("v")); err != nil {
					t.Error(err)
					return
				}
				if _, ok := s.Get(key); !ok {
					t.Errorf("lost own write %s", key)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Fatalf("Len = %d, want 800", s.Len())
	}
}

func TestLockManagerExclusive(t *testing.T) {
	lm := NewLockManager()
	lm.Lock("a")
	if lm.TryLock("a") {
		t.Fatal("TryLock succeeded on held lock")
	}
	if !lm.TryLock("b") {
		t.Fatal("TryLock failed on free lock")
	}
	lm.Unlock("a")
	if !lm.TryLock("a") {
		t.Fatal("TryLock failed after Unlock")
	}
	if lm.Held() != 2 {
		t.Fatalf("Held = %d, want 2", lm.Held())
	}
	lm.Unlock("missing") // no-op
}

func TestLockManagerBlocksAndWakes(t *testing.T) {
	lm := NewLockManager()
	lm.Lock("k")
	acquired := make(chan struct{})
	go func() {
		lm.Lock("k")
		close(acquired)
	}()
	// Wait until the goroutine is provably blocked (wait counter moved).
	for lm.Waits() == 0 {
		select {
		case <-acquired:
			t.Fatal("second Lock acquired while held")
		default:
		}
	}
	lm.Unlock("k")
	<-acquired // must complete
	if lm.Waits() == 0 {
		t.Fatal("contention not counted")
	}
}

func TestLockManagerMutualExclusionStress(t *testing.T) {
	lm := NewLockManager()
	var counter int
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				lm.Lock("ctr")
				counter++
				lm.Unlock("ctr")
			}
		}()
	}
	wg.Wait()
	if counter != 16*200 {
		t.Fatalf("counter = %d, want %d (lost updates)", counter, 16*200)
	}
}

func TestWALEncodeDecodeRoundTrip(t *testing.T) {
	rec := encodeRecord(opPut, "key", []byte("value"))
	op, key, val, n, ok := decodeRecord(rec)
	if !ok || op != opPut || key != "key" || string(val) != "value" || n != len(rec) {
		t.Fatalf("decode = %v %q %q %d %v", op, key, val, n, ok)
	}
	// Empty key and value are legal.
	rec = encodeRecord(opDel, "", nil)
	op, key, val, _, ok = decodeRecord(rec)
	if !ok || op != opDel || key != "" || len(val) != 0 {
		t.Fatal("empty-key record round trip failed")
	}
}

func TestWALDecodeRejectsGarbage(t *testing.T) {
	if _, _, _, _, ok := decodeRecord([]byte{0xee, 1, 2, 3, 4, 5, 6, 7, 8, 9}); ok {
		t.Fatal("garbage op accepted")
	}
	if _, _, _, _, ok := decodeRecord(nil); ok {
		t.Fatal("empty input accepted")
	}
	rec := encodeRecord(opPut, "k", []byte("v"))
	if _, _, _, _, ok := decodeRecord(rec[:len(rec)-1]); ok {
		t.Fatal("truncated record accepted")
	}
}
