package kvstore

import (
	"bytes"
	"testing"
)

// fuzzRec is one decoded leaf record, for comparing replayed sequences.
type fuzzRec struct {
	op  byte
	key string
	val string
}

// fuzzBaseLog builds a known-good WAL covering every record kind — puts,
// an overwrite, a delete, an atomic batch, and a group-commit frame (an
// opBatch written by a commit leader whose group contained a plain put, a
// delete, and an application batch, nesting opBatch two deep) — and
// returns the encoded log with the leaf records replay must produce.
func fuzzBaseLog() ([]byte, []fuzzRec) {
	var log []byte
	log = appendRecord(log, opPut, "alpha", []byte("1"))
	log = appendRecord(log, opPut, "beta", []byte("22"))
	log = appendRecord(log, opPut, "alpha", []byte("333"))
	log = appendRecord(log, opDel, "beta", nil)
	var batch []byte
	batch = appendRecord(batch, opPut, "gamma", []byte("4444"))
	batch = appendRecord(batch, opDel, "alpha", nil)
	log = appendRecord(log, opBatch, "", batch)
	// Group frame: exactly what Store.buildFrame emits for a group of
	// three committers, one of which committed an application batch.
	var inner []byte
	inner = appendRecord(inner, opPut, "delta", []byte("55555"))
	var groupedBatch []byte
	groupedBatch = appendRecord(groupedBatch, opPut, "epsilon", []byte("6"))
	groupedBatch = appendRecord(groupedBatch, opDel, "gamma", nil)
	inner = appendRecord(inner, opBatch, "", groupedBatch)
	inner = appendRecord(inner, opDel, "delta", nil)
	log = appendRecord(log, opBatch, "", inner)
	recs := []fuzzRec{
		{opPut, "alpha", "1"},
		{opPut, "beta", "22"},
		{opPut, "alpha", "333"},
		{opDel, "beta", ""},
		{opPut, "gamma", "4444"},
		{opDel, "alpha", ""},
		{opPut, "delta", "55555"},
		{opPut, "epsilon", "6"},
		{opDel, "gamma", ""},
		{opDel, "delta", ""},
	}
	return log, recs
}

// TestGroupFrameReplayEquivalence pins the group-commit framing contract:
// a leader's batched frame must replay to exactly the same leaf sequence
// as the sequential records it grouped, whatever mix of puts, deletes,
// and nested application batches the group carried.
func TestGroupFrameReplayEquivalence(t *testing.T) {
	var sequential []byte
	sequential = appendRecord(sequential, opPut, "a", []byte("1"))
	sequential = appendRecord(sequential, opDel, "b", nil)
	var appBatch []byte
	appBatch = appendRecord(appBatch, opPut, "c", []byte("2"))
	appBatch = appendRecord(appBatch, opPut, "d", []byte("3"))
	sequential = appendRecord(sequential, opBatch, "", appBatch)

	grouped := appendRecord(nil, opBatch, "", sequential)

	collect := func(data []byte) []fuzzRec {
		var out []fuzzRec
		replay(data, func(op byte, key string, val []byte) {
			out = append(out, fuzzRec{op, key, string(val)})
		})
		return out
	}
	seq, grp := collect(sequential), collect(grouped)
	if len(seq) != 4 || len(grp) != len(seq) {
		t.Fatalf("replayed %d sequential vs %d grouped leaves, want 4 each", len(seq), len(grp))
	}
	for i := range seq {
		if seq[i] != grp[i] {
			t.Fatalf("leaf %d: sequential %+v != grouped %+v", i, seq[i], grp[i])
		}
	}
}

// FuzzReplay checks the WAL parser's crash-safety contract on arbitrary
// input: replay never panics and reports exactly the records it applied;
// an arbitrary suffix after a valid log never disturbs the valid records;
// and corrupting a single byte of a valid log yields a strict prefix of
// the original record sequence — a mangled record must never apply.
func FuzzReplay(f *testing.F) {
	base, _ := fuzzBaseLog()
	f.Add([]byte{}, uint16(0), byte(0))
	f.Add([]byte{opPut, 0xff, 0xff, 0xff, 0xff}, uint16(3), byte(1))
	f.Add(base[:len(base)/2], uint16(7), byte(0x80))
	f.Add(append([]byte(nil), base...), uint16(uint16(len(base)-1)), byte(0x40))
	// Torn tail after a mid-write crash: a partial record (the first bytes
	// of a valid one) trails the log — the case Open now truncates away.
	f.Add(append([]byte(nil), base[:9]...), uint16(2), byte(0x04))
	f.Fuzz(func(t *testing.T, suffix []byte, pos uint16, xor byte) {
		base, want := fuzzBaseLog()
		collect := func(dst *[]fuzzRec) func(op byte, key string, val []byte) {
			return func(op byte, key string, val []byte) {
				*dst = append(*dst, fuzzRec{op, key, string(val)})
			}
		}

		// Arbitrary bytes: clean termination, count matches applied records.
		var raw []fuzzRec
		if n := replay(suffix, collect(&raw)); n != len(raw) {
			t.Fatalf("replay reported %d records, applied %d", n, len(raw))
		}

		// Consumed-offset contract (the torn-tail truncation point): the
		// prefix up to consumed replays to exactly the same records, so
		// truncating there loses nothing that was applied.
		var rawAgain []fuzzRec
		n, consumed := replayConsumed(suffix, collect(&rawAgain))
		if n != len(raw) || consumed > len(suffix) {
			t.Fatalf("replayConsumed = (%d, %d), replay applied %d of %d bytes", n, consumed, len(raw), len(suffix))
		}
		var prefix []fuzzRec
		if m := replay(suffix[:consumed], collect(&prefix)); m != n {
			t.Fatalf("replaying the consumed prefix gave %d records, want %d", m, n)
		}
		for i := range prefix {
			if prefix[i] != rawAgain[i] {
				t.Fatalf("consumed-prefix record %d: %+v != %+v", i, prefix[i], rawAgain[i])
			}
		}

		// Valid log + arbitrary suffix: the valid records replay first,
		// verbatim; a torn suffix adds nothing, a valid one only appends.
		var got []fuzzRec
		replay(append(append([]byte(nil), base...), suffix...), collect(&got))
		if len(got) < len(want) {
			t.Fatalf("suffix %x dropped valid records: got %d, want >= %d", suffix, len(got), len(want))
		}
		for i, w := range want {
			if got[i] != w {
				t.Fatalf("suffix %x corrupted record %d: got %+v, want %+v", suffix, i, got[i], w)
			}
		}

		// One corrupted byte: replay stops before the damaged record, so the
		// applied sequence is a strict prefix of the original. A record with
		// a flipped byte must never apply.
		if xor == 0 {
			return
		}
		corrupt := append([]byte(nil), base...)
		corrupt[int(pos)%len(corrupt)] ^= xor
		if bytes.Equal(corrupt, base) {
			t.Fatal("corruption was a no-op")
		}
		var after []fuzzRec
		replay(corrupt, collect(&after))
		if len(after) >= len(want) {
			t.Fatalf("corrupt byte at %d (xor %#x) still applied all %d records", int(pos)%len(base), xor, len(after))
		}
		for i, r := range after {
			if r != want[i] {
				t.Fatalf("corrupt byte at %d (xor %#x) applied mangled record %d: got %+v, want %+v",
					int(pos)%len(base), xor, i, r, want[i])
			}
		}
	})
}

// TestReplayBatchDepthCap proves a log of nested batch frames — which the
// writer never produces — cannot recurse past maxBatchDepth: replay stops
// cleanly instead of walking an unbounded nesting chain.
func TestReplayBatchDepthCap(t *testing.T) {
	leaf := encodeRecord(opPut, "k", []byte("v"))

	nest := func(depth int) []byte {
		frame := leaf
		for i := 0; i < depth; i++ {
			frame = encodeRecord(opBatch, "", frame)
		}
		return frame
	}

	applied := 0
	count := func(byte, string, []byte) { applied++ }

	// Within the cap the leaf applies.
	applied = 0
	if n := replay(nest(maxBatchDepth), count); n != 1 || applied != 1 {
		t.Fatalf("depth %d: replayed %d (applied %d), want 1", maxBatchDepth, n, applied)
	}
	// One past the cap, the innermost frame is abandoned.
	applied = 0
	if n := replay(nest(maxBatchDepth+1), count); n != 0 || applied != 0 {
		t.Fatalf("depth %d: replayed %d (applied %d), want 0", maxBatchDepth+1, n, applied)
	}
	// Extreme nesting terminates without exhausting the stack.
	applied = 0
	if n := replay(nest(10_000), count); n != 0 || applied != 0 {
		t.Fatalf("depth 10000: replayed %d (applied %d), want 0", n, applied)
	}
}
