package extent

import "testing"

// populate fills a map with n adjacent 4KB extents separated by 4KB holes.
func populate(n int) *Map[int64] {
	m := New[int64](func(v int64, delta int64) int64 { return v + delta })
	for i := 0; i < n; i++ {
		m.Insert(int64(i)*8192, 4096, int64(i))
	}
	return m
}

// BenchmarkInsert10k measures overwriting inserts into a 10k-extent map —
// the DMT/CDT steady-state mutation pattern.
func BenchmarkInsert10k(b *testing.B) {
	m := populate(10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i%10_000) * 8192
		m.Insert(off, 4096, int64(i))
	}
}

// BenchmarkInsertSplitting10k measures inserts that split existing extents
// (worst case: every insert clips two neighbours).
func BenchmarkInsertSplitting10k(b *testing.B) {
	m := populate(10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i%9_999)*8192 + 2048
		m.Insert(off, 4096, int64(i))
	}
}

// BenchmarkDelete10k measures delete+reinsert churn at 10k extents.
func BenchmarkDelete10k(b *testing.B) {
	m := populate(10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i%10_000) * 8192
		m.Delete(off, 4096)
		m.Insert(off, 4096, int64(i))
	}
}

// BenchmarkOverlaps10k measures lookup over a 10k-extent map.
func BenchmarkOverlaps10k(b *testing.B) {
	m := populate(10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i%9_990) * 8192
		got := m.Overlaps(off, 10*8192)
		if len(got) == 0 {
			b.Fatal("no overlaps")
		}
	}
}

// BenchmarkOverlapsScratch10k measures lookup with a caller-reused scratch
// buffer (the serve-path pattern in internal/core).
func BenchmarkOverlapsScratch10k(b *testing.B) {
	m := populate(10_000)
	var scratch []Entry[int64]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i%9_990) * 8192
		scratch = m.AppendOverlaps(scratch[:0], off, 10*8192)
		if len(scratch) == 0 {
			b.Fatal("no overlaps")
		}
	}
}

// BenchmarkGaps10k measures gap enumeration over the holey 10k map.
func BenchmarkGaps10k(b *testing.B) {
	m := populate(10_000)
	var scratch []Gap
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i%9_990) * 8192
		scratch = m.AppendGaps(scratch[:0], off, 10*8192)
		if len(scratch) == 0 {
			b.Fatal("no gaps")
		}
	}
}
