// Package extent provides an interval map over byte ranges: a sorted set
// of non-overlapping extents [Off, Off+Len) each carrying a payload.
//
// Both metadata tables of S4D-Cache are interval maps per original file:
// the Critical Data Table (paper Fig. 5, left) maps file ranges to
// criticality flags, and the Data Mapping Table (Fig. 5, right) maps file
// ranges to cache-file locations. Inserts overwrite any overlapped parts
// of existing extents, splitting them as needed; payloads are adjusted on
// split through a caller-provided function (a DMT mapping split at +delta
// bytes must advance its cache offset by delta).
package extent

import "sort"

// Entry is one extent and its payload.
type Entry[V any] struct {
	// Off is the start of the extent.
	Off int64
	// Len is the extent length in bytes (always > 0 inside a Map).
	Len int64
	// Val is the payload.
	Val V
}

// End returns the exclusive end offset.
func (e Entry[V]) End() int64 { return e.Off + e.Len }

// SplitFunc derives the payload of the suffix part of an extent split
// delta bytes after its start.
type SplitFunc[V any] func(v V, delta int64) V

// Map is an interval map. Use New; the zero value is not usable.
type Map[V any] struct {
	split   SplitFunc[V]
	entries []Entry[V]
}

// New returns an empty map. split may be nil if payloads are
// position-independent (flags, counters).
func New[V any](split SplitFunc[V]) *Map[V] {
	if split == nil {
		split = func(v V, _ int64) V { return v }
	}
	return &Map[V]{split: split}
}

// Len returns the number of extents.
func (m *Map[V]) Len() int { return len(m.entries) }

// Bytes returns the total covered byte count.
func (m *Map[V]) Bytes() int64 {
	var n int64
	for _, e := range m.entries {
		n += e.Len
	}
	return n
}

// Insert sets [off, off+length) to val, overwriting overlapped parts of
// existing extents. Zero or negative lengths are ignored.
func (m *Map[V]) Insert(off, length int64, val V) {
	if length <= 0 {
		return
	}
	m.Delete(off, length)
	i := m.lowerBound(off)
	m.entries = append(m.entries, Entry[V]{})
	copy(m.entries[i+1:], m.entries[i:])
	m.entries[i] = Entry[V]{Off: off, Len: length, Val: val}
}

// Delete removes coverage of [off, off+length), splitting boundary extents.
// Only the intersecting window [i, j) is touched: the boundary entries are
// trimmed (at most two survivors) and the window is replaced with a single
// in-place splice, so cost is O(log n + moved), not a full rebuild.
func (m *Map[V]) Delete(off, length int64) {
	if length <= 0 || len(m.entries) == 0 {
		return
	}
	end := off + length
	i := m.firstIntersecting(off)
	if i == len(m.entries) || m.entries[i].Off >= end {
		return
	}
	// j is the end of the intersecting window: the first entry at or after
	// i whose Off is past the deleted range.
	j := i + sort.Search(len(m.entries)-i, func(k int) bool { return m.entries[i+k].Off >= end })
	var keep [2]Entry[V]
	nk := 0
	if first := m.entries[i]; first.Off < off {
		// Overlap at the first entry's tail: keep the head.
		first.Len = off - first.Off
		keep[nk] = first
		nk++
	}
	if last := m.entries[j-1]; last.End() > end {
		// Overlap at the last entry's head: keep the advanced tail.
		keep[nk] = Entry[V]{Off: end, Len: last.End() - end, Val: m.split(last.Val, end-last.Off)}
		nk++
	}
	m.splice(i, j, keep[:nk])
}

// splice replaces entries[i:j) with repl (at most two entries).
func (m *Map[V]) splice(i, j int, repl []Entry[V]) {
	switch d := len(repl) - (j - i); {
	case d < 0:
		copy(m.entries[i:], repl)
		n := i + len(repl) + copy(m.entries[i+len(repl):], m.entries[j:])
		for k := n; k < len(m.entries); k++ {
			m.entries[k] = Entry[V]{} // release payloads for GC
		}
		m.entries = m.entries[:n]
	case d == 0:
		copy(m.entries[i:j], repl)
	default: // d == 1: one entry split into head + tail
		m.entries = append(m.entries, Entry[V]{})
		copy(m.entries[j+1:], m.entries[j:])
		copy(m.entries[i:], repl)
	}
}

// Overlaps returns the entries intersecting [off, off+length), in offset
// order. Entries are returned whole (not clipped).
func (m *Map[V]) Overlaps(off, length int64) []Entry[V] {
	return m.AppendOverlaps(nil, off, length)
}

// AppendOverlaps appends the entries intersecting [off, off+length) to dst
// and returns the extended slice. Hot callers (the serve path in
// internal/core, cachespace bookkeeping) pass a reused scratch buffer to
// avoid a per-lookup allocation.
func (m *Map[V]) AppendOverlaps(dst []Entry[V], off, length int64) []Entry[V] {
	if length <= 0 {
		return dst
	}
	end := off + length
	for i := m.firstIntersecting(off); i < len(m.entries); i++ {
		e := m.entries[i]
		if e.Off >= end {
			break
		}
		if e.End() > off {
			dst = append(dst, e)
		}
	}
	return dst
}

// Covered reports whether [off, off+length) is fully covered by extents.
func (m *Map[V]) Covered(off, length int64) bool {
	if length <= 0 {
		return true
	}
	pos := off
	end := off + length
	for i := m.firstIntersecting(off); i < len(m.entries); i++ {
		e := m.entries[i]
		if e.Off > pos {
			return false
		}
		if e.End() >= end {
			return true
		}
		pos = e.End()
	}
	return pos >= end
}

// Gap is an uncovered subrange.
type Gap struct {
	Off, Len int64
}

// Gaps returns the uncovered subranges of [off, off+length), in order.
func (m *Map[V]) Gaps(off, length int64) []Gap {
	return m.AppendGaps(nil, off, length)
}

// AppendGaps appends the uncovered subranges of [off, off+length) to dst
// and returns the extended slice. See AppendOverlaps for the scratch-buffer
// contract.
func (m *Map[V]) AppendGaps(dst []Gap, off, length int64) []Gap {
	if length <= 0 {
		return dst
	}
	end := off + length
	pos := off
	for i := m.firstIntersecting(off); i < len(m.entries); i++ {
		e := m.entries[i]
		if e.Off >= end {
			break
		}
		if e.Off > pos {
			dst = append(dst, Gap{Off: pos, Len: e.Off - pos})
		}
		if e.End() > pos {
			pos = e.End()
		}
	}
	if pos < end {
		dst = append(dst, Gap{Off: pos, Len: end - pos})
	}
	return dst
}

// Find returns the entry containing off.
func (m *Map[V]) Find(off int64) (Entry[V], bool) {
	i := m.firstIntersecting(off)
	if i < len(m.entries) {
		e := m.entries[i]
		if e.Off <= off && off < e.End() {
			return e, true
		}
	}
	var zero Entry[V]
	return zero, false
}

// AppendEntries appends every extent to dst in offset order and returns
// the extended slice — the snapshot primitive behind the striped tables'
// immutable epoch views (internal/dmt, internal/cdt).
func (m *Map[V]) AppendEntries(dst []Entry[V]) []Entry[V] {
	return append(dst, m.entries...)
}

// Walk calls fn for every extent in offset order; returning false stops.
func (m *Map[V]) Walk(fn func(Entry[V]) bool) {
	for _, e := range m.entries {
		if !fn(e) {
			return
		}
	}
}

// Clear removes all extents.
func (m *Map[V]) Clear() { m.entries = m.entries[:0] }

// lowerBound returns the index of the first entry with Off >= off.
func (m *Map[V]) lowerBound(off int64) int {
	return sort.Search(len(m.entries), func(i int) bool { return m.entries[i].Off >= off })
}

// firstIntersecting returns the index of the first entry whose End > off.
func (m *Map[V]) firstIntersecting(off int64) int {
	return sort.Search(len(m.entries), func(i int) bool { return m.entries[i].End() > off })
}
