// Package extent provides an interval map over byte ranges: a sorted set
// of non-overlapping extents [Off, Off+Len) each carrying a payload.
//
// Both metadata tables of S4D-Cache are interval maps per original file:
// the Critical Data Table (paper Fig. 5, left) maps file ranges to
// criticality flags, and the Data Mapping Table (Fig. 5, right) maps file
// ranges to cache-file locations. Inserts overwrite any overlapped parts
// of existing extents, splitting them as needed; payloads are adjusted on
// split through a caller-provided function (a DMT mapping split at +delta
// bytes must advance its cache offset by delta).
package extent

import "sort"

// Entry is one extent and its payload.
type Entry[V any] struct {
	// Off is the start of the extent.
	Off int64
	// Len is the extent length in bytes (always > 0 inside a Map).
	Len int64
	// Val is the payload.
	Val V
}

// End returns the exclusive end offset.
func (e Entry[V]) End() int64 { return e.Off + e.Len }

// SplitFunc derives the payload of the suffix part of an extent split
// delta bytes after its start.
type SplitFunc[V any] func(v V, delta int64) V

// Map is an interval map. Use New; the zero value is not usable.
type Map[V any] struct {
	split   SplitFunc[V]
	entries []Entry[V]
}

// New returns an empty map. split may be nil if payloads are
// position-independent (flags, counters).
func New[V any](split SplitFunc[V]) *Map[V] {
	if split == nil {
		split = func(v V, _ int64) V { return v }
	}
	return &Map[V]{split: split}
}

// Len returns the number of extents.
func (m *Map[V]) Len() int { return len(m.entries) }

// Bytes returns the total covered byte count.
func (m *Map[V]) Bytes() int64 {
	var n int64
	for _, e := range m.entries {
		n += e.Len
	}
	return n
}

// Insert sets [off, off+length) to val, overwriting overlapped parts of
// existing extents. Zero or negative lengths are ignored.
func (m *Map[V]) Insert(off, length int64, val V) {
	if length <= 0 {
		return
	}
	m.Delete(off, length)
	i := m.lowerBound(off)
	m.entries = append(m.entries, Entry[V]{})
	copy(m.entries[i+1:], m.entries[i:])
	m.entries[i] = Entry[V]{Off: off, Len: length, Val: val}
}

// Delete removes coverage of [off, off+length), splitting boundary extents.
func (m *Map[V]) Delete(off, length int64) {
	if length <= 0 || len(m.entries) == 0 {
		return
	}
	end := off + length
	out := m.entries[:0]
	var tail []Entry[V]
	for _, e := range m.entries {
		switch {
		case e.End() <= off || e.Off >= end:
			out = append(out, e)
		case e.Off < off && e.End() > end:
			// Covered strictly inside: keep head, synthesize tail.
			tail = append(tail, Entry[V]{Off: end, Len: e.End() - end, Val: m.split(e.Val, end-e.Off)})
			e.Len = off - e.Off
			out = append(out, e)
		case e.Off < off:
			// Overlap at the entry's tail: trim.
			e.Len = off - e.Off
			out = append(out, e)
		case e.End() > end:
			// Overlap at the entry's head: advance.
			delta := end - e.Off
			out = append(out, Entry[V]{Off: end, Len: e.End() - end, Val: m.split(e.Val, delta)})
		default:
			// Fully covered: drop.
		}
	}
	m.entries = append(out, tail...)
	sort.Slice(m.entries, func(i, j int) bool { return m.entries[i].Off < m.entries[j].Off })
}

// Overlaps returns the entries intersecting [off, off+length), in offset
// order. Entries are returned whole (not clipped).
func (m *Map[V]) Overlaps(off, length int64) []Entry[V] {
	if length <= 0 {
		return nil
	}
	end := off + length
	var out []Entry[V]
	for i := m.firstIntersecting(off); i < len(m.entries); i++ {
		e := m.entries[i]
		if e.Off >= end {
			break
		}
		if e.End() > off {
			out = append(out, e)
		}
	}
	return out
}

// Covered reports whether [off, off+length) is fully covered by extents.
func (m *Map[V]) Covered(off, length int64) bool {
	if length <= 0 {
		return true
	}
	pos := off
	end := off + length
	for i := m.firstIntersecting(off); i < len(m.entries); i++ {
		e := m.entries[i]
		if e.Off > pos {
			return false
		}
		if e.End() >= end {
			return true
		}
		pos = e.End()
	}
	return pos >= end
}

// Gap is an uncovered subrange.
type Gap struct {
	Off, Len int64
}

// Gaps returns the uncovered subranges of [off, off+length), in order.
func (m *Map[V]) Gaps(off, length int64) []Gap {
	if length <= 0 {
		return nil
	}
	end := off + length
	pos := off
	var out []Gap
	for i := m.firstIntersecting(off); i < len(m.entries); i++ {
		e := m.entries[i]
		if e.Off >= end {
			break
		}
		if e.Off > pos {
			out = append(out, Gap{Off: pos, Len: e.Off - pos})
		}
		if e.End() > pos {
			pos = e.End()
		}
	}
	if pos < end {
		out = append(out, Gap{Off: pos, Len: end - pos})
	}
	return out
}

// Find returns the entry containing off.
func (m *Map[V]) Find(off int64) (Entry[V], bool) {
	i := m.firstIntersecting(off)
	if i < len(m.entries) {
		e := m.entries[i]
		if e.Off <= off && off < e.End() {
			return e, true
		}
	}
	var zero Entry[V]
	return zero, false
}

// Walk calls fn for every extent in offset order; returning false stops.
func (m *Map[V]) Walk(fn func(Entry[V]) bool) {
	for _, e := range m.entries {
		if !fn(e) {
			return
		}
	}
}

// Clear removes all extents.
func (m *Map[V]) Clear() { m.entries = m.entries[:0] }

// lowerBound returns the index of the first entry with Off >= off.
func (m *Map[V]) lowerBound(off int64) int {
	return sort.Search(len(m.entries), func(i int) bool { return m.entries[i].Off >= off })
}

// firstIntersecting returns the index of the first entry whose End > off.
func (m *Map[V]) firstIntersecting(off int64) int {
	return sort.Search(len(m.entries), func(i int) bool { return m.entries[i].End() > off })
}
