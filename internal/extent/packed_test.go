package extent

import (
	"math/rand"
	"testing"
)

// posSplit advances the payload by the split delta, like the DMT's
// cache-offset payload.
func posSplit(v uint64, delta int64) uint64 { return v + uint64(delta) }

func posSplitV(v uint64, delta int64) uint64 { return v + uint64(delta) }

// checkSegEquals compares a packed segment against the reference Map
// with identical history.
func checkSegEquals(t *testing.T, s *Slab, g Seg, m *Map[uint64]) {
	t.Helper()
	offs, lens, vals := s.View(g)
	if len(offs) != m.Len() {
		t.Fatalf("entry count: packed %d, map %d", len(offs), m.Len())
	}
	i := 0
	m.Walk(func(e Entry[uint64]) bool {
		if offs[i] != e.Off || int64(lens[i]) != e.Len || vals[i] != e.Val {
			t.Fatalf("entry %d: packed (%d,%d,%d), map (%d,%d,%d)",
				i, offs[i], lens[i], vals[i], e.Off, e.Len, e.Val)
		}
		i++
		return true
	})
}

func TestSlabMatchesMapRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewSlab()
	var g Seg
	m := New[uint64](posSplit)
	for op := 0; op < 20000; op++ {
		off := int64(rng.Intn(4096)) * 16
		length := int64(1+rng.Intn(64)) * 16
		if rng.Intn(3) == 0 {
			s.Delete(&g, off, length, posSplit)
			m.Delete(off, length)
		} else {
			val := uint64(rng.Intn(1 << 30))
			s.Insert(&g, off, length, val, posSplit)
			m.Insert(off, length, val)
		}
		if op%512 == 0 {
			checkSegEquals(t, s, g, m)
		}
	}
	checkSegEquals(t, s, g, m)

	// Gaps and coverage agree on random queries.
	for q := 0; q < 2000; q++ {
		off := int64(rng.Intn(5000)) * 16
		length := int64(1+rng.Intn(128)) * 16
		pg := s.AppendGaps(g, nil, off, length)
		mg := m.Gaps(off, length)
		if len(pg) != len(mg) {
			t.Fatalf("gap count @%d+%d: packed %d, map %d", off, length, len(pg), len(mg))
		}
		for i := range pg {
			if pg[i] != mg[i] {
				t.Fatalf("gap %d: packed %+v, map %+v", i, pg[i], mg[i])
			}
		}
		if s.Covered(g, off, length) != m.Covered(off, length) {
			t.Fatalf("covered mismatch @%d+%d", off, length)
		}
	}
}

func TestSlabManySegments(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := NewSlab()
	const nSegs = 300
	segs := make([]Seg, nSegs)
	maps := make([]*Map[uint64], nSegs)
	for i := range maps {
		maps[i] = New[uint64](posSplitV)
	}
	for op := 0; op < 30000; op++ {
		i := rng.Intn(nSegs)
		switch rng.Intn(10) {
		case 0: // free the whole segment (spill-style drop)
			s.Free(&segs[i])
			maps[i] = New[uint64](posSplitV)
		case 1, 2:
			off := int64(rng.Intn(1024)) * 8
			length := int64(1+rng.Intn(32)) * 8
			s.Delete(&segs[i], off, length, posSplitV)
			maps[i].Delete(off, length)
		default:
			off := int64(rng.Intn(1024)) * 8
			length := int64(1+rng.Intn(32)) * 8
			val := uint64(rng.Intn(1 << 20))
			s.Insert(&segs[i], off, length, val, posSplitV)
			maps[i].Insert(off, length, val)
		}
	}
	for i := range segs {
		checkSegEquals(t, s, segs[i], maps[i])
	}
	// Free everything: all chunks must drain and release their bytes,
	// except possibly the open chunk.
	for i := range segs {
		s.Free(&segs[i])
	}
	if s.bytes > slabChunkSlots*SlabEntryBytes {
		t.Fatalf("after freeing all segments %d bytes remain allocated", s.bytes)
	}
}

func TestSlabLongExtentSplitsIntoPieces(t *testing.T) {
	s := NewSlab()
	var g Seg
	total := maxExtentLen + int64(1000)
	s.Insert(&g, 0, total, 500, posSplit)
	offs, lens, vals := s.View(g)
	if len(offs) != 2 {
		t.Fatalf("pieces = %d, want 2", len(offs))
	}
	if offs[0] != 0 || int64(lens[0]) != maxExtentLen || vals[0] != 500 {
		t.Fatalf("piece 0: %d %d %d", offs[0], lens[0], vals[0])
	}
	if offs[1] != maxExtentLen || int64(lens[1]) != 1000 || vals[1] != 500+uint64(maxExtentLen) {
		t.Fatalf("piece 1: %d %d %d", offs[1], lens[1], vals[1])
	}
	if !s.Covered(g, 0, total) {
		t.Fatal("long insert not fully covered")
	}
}

func TestSlabOversizeSegment(t *testing.T) {
	s := NewSlab()
	var g Seg
	// More extents than one shared chunk holds forces a dedicated chunk.
	for i := 0; i < slabChunkSlots+100; i++ {
		off := int64(i) * 100
		s.Insert(&g, off, 50, uint64(i), posSplit)
	}
	if g.Len() != slabChunkSlots+100 {
		t.Fatalf("len = %d", g.Len())
	}
	offs, lens, vals := s.View(g)
	for i := range offs {
		if offs[i] != int64(i)*100 || lens[i] != 50 || vals[i] != uint64(i) {
			t.Fatalf("entry %d: %d %d %d", i, offs[i], lens[i], vals[i])
		}
	}
	s.Free(&g)
	if g.Len() != 0 {
		t.Fatal("freed seg not empty")
	}
}

func TestSlabInsertZeroAllocsSteadyState(t *testing.T) {
	s := NewSlab()
	var g Seg
	for i := 0; i < 64; i++ {
		s.Insert(&g, int64(i)*100, 50, uint64(i), posSplit)
	}
	// Overwriting existing coverage at stable capacity must not allocate.
	allocs := testing.AllocsPerRun(200, func() {
		s.Insert(&g, 1600, 50, 7, posSplit)
		s.Covered(g, 1600, 50)
		s.FirstIntersecting(g, 800)
	})
	if allocs != 0 {
		t.Fatalf("steady-state insert allocates %.1f/op, want 0", allocs)
	}
}
