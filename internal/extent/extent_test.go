package extent

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertAndFind(t *testing.T) {
	m := New[string](nil)
	m.Insert(100, 50, "a")
	e, ok := m.Find(120)
	if !ok || e.Val != "a" || e.Off != 100 || e.Len != 50 {
		t.Fatalf("Find(120) = %+v, %v", e, ok)
	}
	if _, ok := m.Find(99); ok {
		t.Fatal("Find before extent succeeded")
	}
	if _, ok := m.Find(150); ok {
		t.Fatal("Find at exclusive end succeeded")
	}
}

func TestInsertOverwritesOverlap(t *testing.T) {
	m := New[string](nil)
	m.Insert(0, 100, "old")
	m.Insert(40, 20, "new")
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (head, new, tail)", m.Len())
	}
	checks := []struct {
		off  int64
		want string
	}{{0, "old"}, {39, "old"}, {40, "new"}, {59, "new"}, {60, "old"}, {99, "old"}}
	for _, c := range checks {
		e, ok := m.Find(c.off)
		if !ok || e.Val != c.want {
			t.Fatalf("Find(%d) = %+v,%v want %q", c.off, e, ok, c.want)
		}
	}
}

func TestSplitAdjustsPayload(t *testing.T) {
	// Payload models a cache offset: splitting at +delta advances it.
	type mapping struct{ cacheOff int64 }
	m := New[mapping](func(v mapping, delta int64) mapping {
		return mapping{cacheOff: v.cacheOff + delta}
	})
	m.Insert(1000, 100, mapping{cacheOff: 5000})
	m.Delete(1030, 10)
	head, ok := m.Find(1000)
	if !ok || head.Len != 30 || head.Val.cacheOff != 5000 {
		t.Fatalf("head = %+v", head)
	}
	tail, ok := m.Find(1040)
	if !ok || tail.Off != 1040 || tail.Len != 60 || tail.Val.cacheOff != 5040 {
		t.Fatalf("tail = %+v, want cacheOff 5040", tail)
	}
}

func TestDeleteVariants(t *testing.T) {
	build := func() *Map[int] {
		m := New[int](nil)
		m.Insert(10, 10, 1)
		m.Insert(30, 10, 2)
		m.Insert(50, 10, 3)
		return m
	}
	m := build()
	m.Delete(0, 100) // everything
	if m.Len() != 0 || m.Bytes() != 0 {
		t.Fatal("full delete left extents")
	}
	m = build()
	m.Delete(35, 100) // tail of 2nd, all of 3rd
	if m.Len() != 2 || m.Bytes() != 15 {
		t.Fatalf("Len=%d Bytes=%d, want 2/15", m.Len(), m.Bytes())
	}
	m = build()
	m.Delete(0, 15) // head of 1st
	if e, ok := m.Find(15); !ok || e.Len != 5 {
		t.Fatalf("head-trim result = %+v,%v", e, ok)
	}
	m = build()
	m.Delete(5, 1) // no intersection with any extent body
	if m.Bytes() != 30 {
		t.Fatal("non-overlapping delete changed coverage")
	}
	m = build()
	m.Delete(10, -5) // ignored
	if m.Bytes() != 30 {
		t.Fatal("negative-length delete changed coverage")
	}
}

func TestOverlaps(t *testing.T) {
	m := New[int](nil)
	m.Insert(10, 10, 1)
	m.Insert(30, 10, 2)
	m.Insert(50, 10, 3)
	got := m.Overlaps(15, 30) // hits 1 and 2, not 3 (45..50 gap, 50 excluded? 15+30=45)
	if len(got) != 2 || got[0].Val != 1 || got[1].Val != 2 {
		t.Fatalf("Overlaps = %+v", got)
	}
	if got := m.Overlaps(20, 10); got != nil {
		t.Fatalf("gap query returned %+v", got)
	}
	if got := m.Overlaps(0, -1); got != nil {
		t.Fatal("negative length returned entries")
	}
	// Touching boundaries are exclusive.
	if got := m.Overlaps(0, 10); got != nil {
		t.Fatalf("adjacent-before query returned %+v", got)
	}
	if got := m.Overlaps(60, 10); got != nil {
		t.Fatalf("adjacent-after query returned %+v", got)
	}
}

func TestCoveredAndGaps(t *testing.T) {
	m := New[int](nil)
	m.Insert(10, 10, 1)
	m.Insert(20, 10, 2) // adjacent: 10..30 covered
	if !m.Covered(10, 20) {
		t.Fatal("adjacent extents should cover 10..30")
	}
	if m.Covered(5, 10) {
		t.Fatal("5..15 reported covered")
	}
	if !m.Covered(0, 0) {
		t.Fatal("empty range should be trivially covered")
	}
	gaps := m.Gaps(0, 40)
	if len(gaps) != 2 || gaps[0] != (Gap{0, 10}) || gaps[1] != (Gap{30, 10}) {
		t.Fatalf("Gaps = %+v", gaps)
	}
	if gaps := m.Gaps(12, 5); gaps != nil {
		t.Fatalf("covered range has gaps %+v", gaps)
	}
	// Entirely uncovered.
	gaps = m.Gaps(100, 50)
	if len(gaps) != 1 || gaps[0] != (Gap{100, 50}) {
		t.Fatalf("uncovered Gaps = %+v", gaps)
	}
}

func TestWalkOrderAndStop(t *testing.T) {
	m := New[int](nil)
	m.Insert(30, 5, 3)
	m.Insert(10, 5, 1)
	m.Insert(20, 5, 2)
	var seen []int
	m.Walk(func(e Entry[int]) bool {
		seen = append(seen, e.Val)
		return true
	})
	if len(seen) != 3 || seen[0] != 1 || seen[1] != 2 || seen[2] != 3 {
		t.Fatalf("Walk order = %v", seen)
	}
	count := 0
	m.Walk(func(e Entry[int]) bool { count++; return false })
	if count != 1 {
		t.Fatalf("Walk early stop visited %d", count)
	}
	m.Clear()
	if m.Len() != 0 {
		t.Fatal("Clear failed")
	}
}

func TestZeroLengthInsertIgnored(t *testing.T) {
	m := New[int](nil)
	m.Insert(10, 0, 1)
	m.Insert(10, -5, 1)
	if m.Len() != 0 {
		t.Fatal("degenerate insert created extents")
	}
}

// Property: the map behaves exactly like a byte→value reference model under
// random inserts and deletes, and its extents never overlap.
func TestMatchesReferenceModelProperty(t *testing.T) {
	const space = 400
	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := int(opsRaw%40) + 1
		// Payload carries its own origin so splits can be validated:
		// value at byte x must equal origin-value + (x - origin-off).
		type val struct{ base int64 }
		m := New[val](func(v val, delta int64) val { return val{base: v.base + delta} })
		ref := make([]int64, space) // 0 = uncovered, else expected base+delta+1
		for i := 0; i < ops; i++ {
			off := rng.Int63n(space - 1)
			length := rng.Int63n(space-off-1) + 1
			if rng.Intn(3) == 0 {
				m.Delete(off, length)
				for x := off; x < off+length; x++ {
					ref[x] = 0
				}
				continue
			}
			base := rng.Int63n(1 << 30)
			m.Insert(off, length, val{base: base})
			for x := off; x < off+length; x++ {
				ref[x] = base + (x - off) + 1
			}
		}
		// Validate every byte.
		for x := int64(0); x < space; x++ {
			e, ok := m.Find(x)
			if (ref[x] != 0) != ok {
				return false
			}
			if ok {
				want := ref[x] - 1
				got := e.Val.base + (x - e.Off)
				if got != want {
					return false
				}
			}
		}
		// Validate non-overlap and ordering.
		prevEnd := int64(-1)
		okOrder := true
		m.Walk(func(e Entry[val]) bool {
			if e.Off < prevEnd || e.Len <= 0 {
				okOrder = false
				return false
			}
			prevEnd = e.End()
			return true
		})
		return okOrder
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: Gaps and Overlaps partition any query range.
func TestGapsOverlapsPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New[int](nil)
		for i := 0; i < 10; i++ {
			m.Insert(rng.Int63n(500), rng.Int63n(60)+1, i)
		}
		off := rng.Int63n(500)
		length := rng.Int63n(200) + 1
		var covered int64
		for _, e := range m.Overlaps(off, length) {
			lo, hi := e.Off, e.End()
			if lo < off {
				lo = off
			}
			if hi > off+length {
				hi = off + length
			}
			covered += hi - lo
		}
		var gapped int64
		for _, g := range m.Gaps(off, length) {
			gapped += g.Len
		}
		return covered+gapped == length
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
