// Packed extent storage: a slab of struct-of-arrays chunks holding many
// small interval maps without per-map Go objects.
//
// The classic Map stores []Entry[V] per file — 32 bytes per extent for
// the DMT's 17-byte payload after padding, plus a heap object and map
// entry per file. At the million-file scale of ROADMAP item 4 that
// overhead dominates. The Slab packs extents of all files into shared
// chunks of three parallel arrays (off int64, len uint32, val uint64 —
// 20 bytes per extent, no padding), and each file holds only a 16-byte
// Seg handle addressing its contiguous, sorted run. Segments grow by
// power-of-two reallocation within the slab; freed segments go on
// per-size free lists, and a chunk whose live segments all drain is
// released back to the garbage collector (the spill path relies on this
// to actually return memory).
//
// The Slab implements the same interval-map semantics as Map — insert
// overwrites overlapped parts, splitting boundary extents with a
// caller-provided SplitFunc64 — for the packed uint64 payload the DMT
// encodes its Mapping into. Single extents are capped at maxExtentLen
// bytes (the uint32 length limit); longer inserts split into adjacent
// pieces with the payload advanced, which preserves lookup semantics
// exactly.
package extent

// SlabEntryBytes is the packed storage cost of one extent: an 8-byte
// offset, 4-byte length and 8-byte payload in parallel arrays.
const SlabEntryBytes = 20

const (
	// slabChunkSlots is the extent capacity of one shared chunk
	// (8192 × 20 B = 160 KiB). Segments needing more get a dedicated
	// exactly-sized chunk.
	slabChunkSlots = 1 << 13
	// maxExtentLen caps a single packed extent's byte length below the
	// uint32 limit; longer ranges are stored as adjacent pieces.
	maxExtentLen = int64(1) << 31
	// numClasses covers power-of-two segment capacities up to 2^31.
	numClasses = 32
)

// SplitFunc64 derives the payload of the suffix part of a packed extent
// split delta bytes after its start, mirroring SplitFunc for the
// packed-payload storage.
type SplitFunc64 func(val uint64, delta int64) uint64

// Seg is a handle to one segment of a Slab: a sorted, non-overlapping
// extent run. The zero Seg is an empty, unallocated segment.
type Seg struct {
	chunk uint32
	start uint32
	n     uint32
	cap   uint32
}

// Len returns the number of extents in the segment.
func (g Seg) Len() int { return int(g.n) }

// slabChunk is one storage chunk: parallel arrays plus bump-allocation
// and liveness bookkeeping. Arrays are nil once the chunk is released.
type slabChunk struct {
	offs []int64
	lens []uint32
	vals []uint64
	used uint32 // bump pointer (slots carved so far)
	live int32  // slots owned by live segments
}

// Slab owns the chunks and free lists. Use NewSlab; not safe for
// concurrent use (callers serialize per table or per stripe).
type Slab struct {
	chunks []slabChunk
	free   [numClasses][]uint64 // packed refs: chunk<<32 | start
	open   int                  // chunk currently bump-carved, -1 if none
	bytes  int64                // allocated chunk bytes
}

// NewSlab returns an empty slab.
func NewSlab() *Slab {
	return &Slab{open: -1}
}

// Bytes returns the allocated chunk bytes (live chunks only — released
// chunks have been returned to the collector). Deterministic for a
// given operation sequence.
func (s *Slab) Bytes() int64 { return s.bytes }

// SegBytes returns the slab bytes held by g's allocation (capacity, not
// just live entries) — the residency attribution the DMT budget uses.
func (s *Slab) SegBytes(g Seg) int64 { return int64(g.cap) * SlabEntryBytes }

// View returns g's extents as parallel slices (offsets, lengths,
// payloads), each of length g.Len(). The slices alias slab storage:
// valid until the next mutation of g, never to be retained.
func (s *Slab) View(g Seg) (offs []int64, lens []uint32, vals []uint64) {
	if g.cap == 0 {
		return nil, nil, nil
	}
	c := &s.chunks[g.chunk]
	return c.offs[g.start : g.start+g.n], c.lens[g.start : g.start+g.n], c.vals[g.start : g.start+g.n]
}

// class returns the free-list class of a power-of-two capacity.
func class(capSlots uint32) int {
	c := 0
	for 1<<c < int(capSlots) {
		c++
	}
	return c
}

// alloc carves or reuses a segment of capSlots (a power of two) and
// returns its location.
func (s *Slab) alloc(capSlots uint32) (chunk, start uint32) {
	cl := class(capSlots)
	for fl := s.free[cl]; len(fl) > 0; fl = s.free[cl] {
		ref := fl[len(fl)-1]
		s.free[cl] = fl[:len(fl)-1]
		ci := uint32(ref >> 32)
		if s.chunks[ci].offs == nil {
			continue // chunk released while this ref sat in the list
		}
		s.chunks[ci].live += int32(capSlots)
		return ci, uint32(ref)
	}
	if capSlots > slabChunkSlots {
		// Dedicated exactly-sized chunk, fully used on arrival.
		s.chunks = append(s.chunks, slabChunk{
			offs: make([]int64, capSlots),
			lens: make([]uint32, capSlots),
			vals: make([]uint64, capSlots),
			used: capSlots,
			live: int32(capSlots),
		})
		s.bytes += int64(capSlots) * SlabEntryBytes
		return uint32(len(s.chunks) - 1), 0
	}
	if s.open < 0 || s.chunks[s.open].used+capSlots > slabChunkSlots {
		prev := s.open
		s.chunks = append(s.chunks, slabChunk{
			offs: make([]int64, slabChunkSlots),
			lens: make([]uint32, slabChunkSlots),
			vals: make([]uint64, slabChunkSlots),
		})
		s.bytes += int64(slabChunkSlots) * SlabEntryBytes
		s.open = len(s.chunks) - 1
		if prev >= 0 && s.chunks[prev].live == 0 {
			s.release(prev)
		}
	}
	c := &s.chunks[s.open]
	start = c.used
	c.used += capSlots
	c.live += int32(capSlots)
	return uint32(s.open), start
}

// freeSeg returns g's allocation to the free lists and releases its
// chunk if no live segment remains there. g becomes the zero Seg.
func (s *Slab) freeSeg(g *Seg) {
	if g.cap == 0 {
		*g = Seg{}
		return
	}
	cl := class(g.cap)
	s.free[cl] = append(s.free[cl], uint64(g.chunk)<<32|uint64(g.start))
	c := &s.chunks[g.chunk]
	c.live -= int32(g.cap)
	if c.live == 0 && int(g.chunk) != s.open {
		s.release(int(g.chunk))
	}
	*g = Seg{}
}

// Free releases g's storage (the spill path's drop-from-memory step).
func (s *Slab) Free(g *Seg) { s.freeSeg(g) }

// release drops a fully-drained chunk's arrays. Stale free-list refs
// into it are filtered lazily at alloc time.
func (s *Slab) release(ci int) {
	c := &s.chunks[ci]
	s.bytes -= int64(cap(c.offs)) * SlabEntryBytes
	c.offs, c.lens, c.vals = nil, nil, nil
	c.used, c.live = 0, 0
}

// grow moves g to a segment of newCap slots, leaving holeLen empty
// slots at index holeAt (entries [holeAt:] shift right by holeLen).
func (s *Slab) grow(g *Seg, newCap uint32, holeAt, holeLen uint32) {
	nc, ns := s.alloc(newCap)
	// Re-resolve after alloc: appending chunks may move s.chunks.
	dst := &s.chunks[nc]
	if g.cap > 0 {
		src := &s.chunks[g.chunk]
		so, do := g.start, ns
		copy(dst.offs[do:do+holeAt], src.offs[so:so+holeAt])
		copy(dst.lens[do:do+holeAt], src.lens[so:so+holeAt])
		copy(dst.vals[do:do+holeAt], src.vals[so:so+holeAt])
		tail := g.n - holeAt
		copy(dst.offs[do+holeAt+holeLen:do+holeAt+holeLen+tail], src.offs[so+holeAt:so+g.n])
		copy(dst.lens[do+holeAt+holeLen:do+holeAt+holeLen+tail], src.lens[so+holeAt:so+g.n])
		copy(dst.vals[do+holeAt+holeLen:do+holeAt+holeLen+tail], src.vals[so+holeAt:so+g.n])
	}
	n := g.n
	s.freeSeg(g)
	*g = Seg{chunk: nc, start: ns, n: n + holeLen, cap: newCap}
}

// shiftRight opens holeLen slots at index i within g (capacity
// permitting; the caller checked n+holeLen <= cap).
func (s *Slab) shiftRight(g *Seg, i, holeLen uint32) {
	c := &s.chunks[g.chunk]
	lo := g.start + i
	hi := g.start + g.n
	copy(c.offs[lo+holeLen:hi+holeLen], c.offs[lo:hi])
	copy(c.lens[lo+holeLen:hi+holeLen], c.lens[lo:hi])
	copy(c.vals[lo+holeLen:hi+holeLen], c.vals[lo:hi])
	g.n += holeLen
}

// shiftLeft closes d slots at index i within g (entries [i+d:] move to
// [i:]).
func (s *Slab) shiftLeft(g *Seg, i, d uint32) {
	c := &s.chunks[g.chunk]
	lo := g.start + i
	hi := g.start + g.n
	copy(c.offs[lo:hi-d], c.offs[lo+d:hi])
	copy(c.lens[lo:hi-d], c.lens[lo+d:hi])
	copy(c.vals[lo:hi-d], c.vals[lo+d:hi])
	g.n -= d
}

// set writes entry i of g.
func (s *Slab) set(g Seg, i uint32, off int64, length uint32, val uint64) {
	c := &s.chunks[g.chunk]
	c.offs[g.start+i] = off
	c.lens[g.start+i] = length
	c.vals[g.start+i] = val
}

// lowerBound returns the index of the first entry of g with Off >= off.
// Manual binary search: sort.Search's closure would allocate on the
// zero-alloc serve path.
func (s *Slab) lowerBound(g Seg, off int64) uint32 {
	offs, _, _ := s.View(g)
	lo, hi := 0, len(offs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if offs[mid] >= off {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return uint32(lo)
}

// FirstIntersecting returns the index of the first entry of g whose end
// exceeds off — where any scan of [off, ...) starts.
func (s *Slab) FirstIntersecting(g Seg, off int64) int {
	offs, lens, _ := s.View(g)
	lo, hi := 0, len(offs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if offs[mid]+int64(lens[mid]) > off {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Insert sets [off, off+length) to val in g, overwriting overlapped
// parts of existing extents — Map.Insert for packed segments. Ranges
// longer than maxExtentLen are stored as adjacent pieces with val
// advanced through split.
func (s *Slab) Insert(g *Seg, off, length int64, val uint64, split SplitFunc64) {
	for length > maxExtentLen {
		s.Insert(g, off, maxExtentLen, val, split)
		val = split(val, maxExtentLen)
		off += maxExtentLen
		length -= maxExtentLen
	}
	if length <= 0 {
		return
	}
	s.Delete(g, off, length, split)
	i := s.lowerBound(*g, off)
	s.insertAt(g, i, off, uint32(length), val)
}

// insertAt opens one slot at index i and writes the entry.
func (s *Slab) insertAt(g *Seg, i uint32, off int64, length uint32, val uint64) {
	if g.n < g.cap {
		s.shiftRight(g, i, 1)
	} else {
		newCap := g.cap * 2
		if newCap == 0 {
			newCap = 1
		}
		s.grow(g, newCap, i, 1)
	}
	s.set(*g, i, off, length, val)
}

// Delete removes coverage of [off, off+length) from g, splitting
// boundary extents — Map.Delete for packed segments.
func (s *Slab) Delete(g *Seg, off, length int64, split SplitFunc64) {
	if length <= 0 || g.n == 0 {
		return
	}
	end := off + length
	offs, lens, vals := s.View(*g)
	i := s.FirstIntersecting(*g, off)
	if i == len(offs) || offs[i] >= end {
		return
	}
	// j is the end of the intersecting window: first entry at or past end.
	j := i
	for j < len(offs) && offs[j] < end {
		j++
	}
	var kOff [2]int64
	var kLen [2]uint32
	var kVal [2]uint64
	nk := uint32(0)
	if offs[i] < off {
		// Overlap at the first entry's tail: keep the head.
		kOff[nk], kLen[nk], kVal[nk] = offs[i], uint32(off-offs[i]), vals[i]
		nk++
	}
	if lastEnd := offs[j-1] + int64(lens[j-1]); lastEnd > end {
		// Overlap at the last entry's head: keep the advanced tail.
		kOff[nk], kLen[nk], kVal[nk] = end, uint32(lastEnd-end), split(vals[j-1], end-offs[j-1])
		nk++
	}
	win := uint32(j - i)
	switch {
	case nk < win:
		for k := uint32(0); k < nk; k++ {
			s.set(*g, uint32(i)+k, kOff[k], kLen[k], kVal[k])
		}
		s.shiftLeft(g, uint32(i)+nk, win-nk)
	case nk == win:
		for k := uint32(0); k < nk; k++ {
			s.set(*g, uint32(i)+k, kOff[k], kLen[k], kVal[k])
		}
	default: // nk == 2, win == 1: one entry split into head + tail
		if g.n < g.cap {
			s.shiftRight(g, uint32(j), 1)
		} else {
			newCap := g.cap * 2
			if newCap == 0 {
				newCap = 1
			}
			s.grow(g, newCap, uint32(j), 1)
		}
		s.set(*g, uint32(i), kOff[0], kLen[0], kVal[0])
		s.set(*g, uint32(i)+1, kOff[1], kLen[1], kVal[1])
	}
}

// AppendGaps appends the uncovered subranges of [off, off+length) to
// dst — Map.AppendGaps for packed segments.
func (s *Slab) AppendGaps(g Seg, dst []Gap, off, length int64) []Gap {
	if length <= 0 {
		return dst
	}
	offs, lens, _ := s.View(g)
	end := off + length
	pos := off
	for i := s.FirstIntersecting(g, off); i < len(offs); i++ {
		if offs[i] >= end {
			break
		}
		if offs[i] > pos {
			dst = append(dst, Gap{Off: pos, Len: offs[i] - pos})
		}
		if e := offs[i] + int64(lens[i]); e > pos {
			pos = e
		}
	}
	if pos < end {
		dst = append(dst, Gap{Off: pos, Len: end - pos})
	}
	return dst
}

// Covered reports whether [off, off+length) is fully covered in g.
func (s *Slab) Covered(g Seg, off, length int64) bool {
	if length <= 0 {
		return true
	}
	offs, lens, _ := s.View(g)
	pos := off
	end := off + length
	for i := s.FirstIntersecting(g, off); i < len(offs); i++ {
		if offs[i] > pos {
			return false
		}
		if e := offs[i] + int64(lens[i]); e >= end {
			return true
		} else if e > pos {
			pos = e
		}
	}
	return pos >= end
}
