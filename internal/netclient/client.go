// Package netclient is the Go client library of the network serve
// frontend (internal/netserve): it dials the server, handshakes a tenant
// namespace, and issues pipelined write/read requests over one connection
// with client-side credit tracking — the client never has more requests in
// flight than the window the server granted at HELLO, so a well-behaved
// client never sees BUSY. Completions arrive out of order and are matched
// back to their calls by request id.
//
// Failure semantics are typed: ErrBusy (server window exceeded — only
// possible when credits are disabled or windows disagree), ErrDraining
// (the server is shutting down gracefully), ErrRejected (malformed
// request), ErrIO (the engine failed the request), and ErrConnClosed
// (the connection died — server crash, drop fault, or Close; every
// in-flight call fails with it). After a connection loss, Reconnect
// re-dials and re-handshakes the same tenant namespace.
package netclient

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"s4dcache/internal/netserve"
)

// Typed failure modes surfaced to callers.
var (
	// ErrBusy is the server's backpressure verdict: the request was refused
	// without queuing. Retry after backoff.
	ErrBusy = errors.New("netclient: server busy")
	// ErrDraining means the server is draining: it completes in-flight
	// requests but admits no new ones.
	ErrDraining = errors.New("netclient: server draining")
	// ErrRejected means the server rejected the request as malformed.
	ErrRejected = errors.New("netclient: request rejected")
	// ErrIO means the engine failed the request.
	ErrIO = errors.New("netclient: server i/o error")
	// ErrConnClosed means the connection died with the request unresolved,
	// or the client is closed/disconnected. Reconnect re-establishes the
	// session.
	ErrConnClosed = errors.New("netclient: connection closed")
)

// Options configures Dial.
type Options struct {
	// Tenant is the namespace handshaked at HELLO; every file name on this
	// connection is scoped to it. Required.
	Tenant string
	// Credits bounds the client's own in-flight requests. 0 adopts the
	// server-granted window (the default and the cooperative mode);
	// negative disables credit tracking entirely, letting callers overrun
	// the server window to observe BUSY backpressure.
	Credits int
	// DialTimeout bounds the TCP connect; 0 means 5s.
	DialTimeout time.Duration
	// WrapConn, if non-nil, wraps the dialed connection (fault injection:
	// faults.Injector.WrapConn). The int is the dial attempt counter.
	WrapConn func(c net.Conn, id int) net.Conn
}

// Call is one asynchronous request. Done receives the call itself exactly
// once when it completes; Err then holds nil or a typed error.
type Call struct {
	Op   uint8
	File string
	Off  int64
	Size int64
	Err  error
	Done chan *Call

	data []byte // write payload (caller-owned until completion)
	buf  []byte // read destination (caller-owned)
	t0   time.Time
}

// Latency returns the wall time from send to completion.
func (c *Call) Latency() time.Duration { return time.Since(c.t0) }

// Client is one tenant session over one TCP connection. Safe for
// concurrent use: any number of goroutines may issue calls; a single
// reader goroutine matches completions by id.
type Client struct {
	opts    Options
	addr    string
	payload bool // server is in payload (functional) mode
	window  int  // server-granted per-connection window

	credits chan struct{} // nil when credit tracking is disabled

	mu      sync.Mutex // guards conn state, pending, nextID, sending
	nc      net.Conn
	lost    bool
	closed  bool
	gen     int // connection generation, bumps on Reconnect
	dials   int
	nextID  uint64
	pending map[uint64]*Call

	wbuf []byte // send scratch, guarded by mu (sends serialize on it)
}

// Dial connects and handshakes the tenant namespace.
func Dial(addr string, opts Options) (*Client, error) {
	if opts.Tenant == "" {
		return nil, fmt.Errorf("netclient: tenant is required")
	}
	if len(opts.Tenant) > netserve.MaxNameLen {
		return nil, fmt.Errorf("netclient: tenant name too long")
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	c := &Client{opts: opts, addr: addr, pending: make(map[uint64]*Call)}
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

// connect dials, handshakes, and starts the reader. Caller must not hold
// mu.
func (c *Client) connect() error {
	nc, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return fmt.Errorf("netclient: dial %s: %w", c.addr, err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c.mu.Lock()
	if c.opts.WrapConn != nil {
		nc = c.opts.WrapConn(nc, c.dials)
	}
	c.dials++
	c.mu.Unlock()

	// HELLO: tenant name, magic and version in the offset/size fields.
	var hdr [netserve.ReqHdrLen]byte
	netserve.PutReqHeader(hdr[:], netserve.ReqHeader{
		ID:      0,
		Op:      netserve.OpHello,
		NameLen: uint16(len(c.opts.Tenant)),
		Off:     netserve.ProtoMagic,
		Size:    netserve.ProtoVersion,
	})
	nc.SetDeadline(time.Now().Add(c.opts.DialTimeout))
	if _, err := nc.Write(append(hdr[:len(hdr):len(hdr)], c.opts.Tenant...)); err != nil {
		nc.Close()
		return fmt.Errorf("netclient: hello: %w", err)
	}
	var rhdr [netserve.RespHdrLen]byte
	if _, err := io.ReadFull(nc, rhdr[:]); err != nil {
		nc.Close()
		return fmt.Errorf("netclient: hello response: %w", err)
	}
	rh := netserve.ParseRespHeader(rhdr[:])
	if rh.Status != netserve.StatusOK {
		nc.Close()
		return fmt.Errorf("netclient: hello refused: %s", netserve.StatusString(rh.Status))
	}
	nc.SetDeadline(time.Time{})

	c.mu.Lock()
	c.nc = nc
	c.lost = false
	c.gen++
	gen := c.gen
	c.window = int(rh.Value)
	c.payload = rh.Flags&netserve.FlagPayload != 0
	c.mu.Unlock()

	// The credit channel is created once, on the first connect: callers may
	// be blocked on it across a Reconnect, and the failure path returns
	// every in-flight credit, so a reconnect never needs to replace it.
	if c.credits == nil && c.opts.Credits >= 0 {
		credits := c.opts.Credits
		if credits == 0 {
			credits = int(rh.Value)
		}
		ch := make(chan struct{}, credits)
		for i := 0; i < credits; i++ {
			ch <- struct{}{}
		}
		c.credits = ch
	}

	go c.readLoop(nc, gen)
	return nil
}

// Window returns the server-granted per-connection window.
func (c *Client) Window() int { return c.window }

// PayloadMode reports whether the server carries data bytes on the wire.
func (c *Client) PayloadMode() bool { return c.payload }

// Go issues one asynchronous request. The returned call completes on its
// Done channel; data (writes) and buf (reads) stay caller-owned and must
// not be mutated until then. Credit tracking blocks here until a slot
// frees; a lost connection fails fast with ErrConnClosed.
func (c *Client) Go(op uint8, file string, off, size int64, data, buf []byte) *Call {
	call := &Call{Op: op, File: file, Off: off, Size: size, Done: make(chan *Call, 1), data: data, buf: buf}
	if op != netserve.OpWrite && op != netserve.OpRead {
		return c.fail(call, fmt.Errorf("netclient: bad op %d", op))
	}
	if len(file) == 0 || len(file) > netserve.MaxNameLen || off < 0 || size <= 0 || size > netserve.MaxPayload {
		return c.fail(call, fmt.Errorf("netclient: bad request %s %q off=%d size=%d", opString(op), file, off, size))
	}
	if c.credits != nil {
		<-c.credits
	}
	if err := c.send(call); err != nil {
		c.releaseCredit()
		return c.fail(call, err)
	}
	return call
}

func (c *Client) fail(call *Call, err error) *Call {
	call.Err = err
	call.t0 = time.Now()
	call.Done <- call
	return call
}

func (c *Client) releaseCredit() {
	if c.credits != nil {
		select {
		case c.credits <- struct{}{}:
		default:
		}
	}
}

// send registers the call and writes its frame. Serialized on mu so frames
// never interleave.
func (c *Client) send(call *Call) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.lost || c.nc == nil {
		return ErrConnClosed
	}
	c.nextID++
	id := c.nextID
	flags := uint8(0)
	carried := int64(0)
	if call.Op == netserve.OpWrite && call.data != nil {
		flags = netserve.FlagPayload
		carried = call.Size
	}
	need := int64(netserve.ReqHdrLen+len(call.File)) + carried
	if int64(cap(c.wbuf)) < need {
		c.wbuf = make([]byte, need)
	}
	b := c.wbuf[:need]
	netserve.PutReqHeader(b, netserve.ReqHeader{
		ID:      id,
		Op:      call.Op,
		Flags:   flags,
		NameLen: uint16(len(call.File)),
		Off:     call.Off,
		Size:    call.Size,
	})
	copy(b[netserve.ReqHdrLen:], call.File)
	if carried > 0 {
		copy(b[netserve.ReqHdrLen+len(call.File):], call.data[:carried])
	}
	c.pending[id] = call
	call.t0 = time.Now()
	if _, err := c.nc.Write(b); err != nil {
		delete(c.pending, id)
		c.failConnLocked()
		return ErrConnClosed
	}
	return nil
}

// readLoop matches responses to pending calls until the connection dies.
// gen guards against a stale reader (pre-Reconnect) touching the new
// session's state.
func (c *Client) readLoop(nc net.Conn, gen int) {
	var hdr [netserve.RespHdrLen]byte
	for {
		if _, err := io.ReadFull(nc, hdr[:]); err != nil {
			break
		}
		h := netserve.ParseRespHeader(hdr[:])
		c.mu.Lock()
		if gen != c.gen {
			c.mu.Unlock()
			return
		}
		call := c.pending[h.ID]
		delete(c.pending, h.ID)
		c.mu.Unlock()
		if h.PayloadLen > 0 {
			// Read payload into the call's buffer; drain it when the call is
			// gone (stale id) or the buffer is too small — framing must hold.
			if call != nil && int(h.PayloadLen) <= len(call.buf) {
				if _, err := io.ReadFull(nc, call.buf[:h.PayloadLen]); err != nil {
					break
				}
			} else if _, err := io.CopyN(io.Discard, nc, int64(h.PayloadLen)); err != nil {
				break
			}
		}
		if call != nil {
			call.Err = statusErr(h.Status)
			c.releaseCredit()
			call.Done <- call
		}
	}
	c.mu.Lock()
	if gen == c.gen {
		c.failConnLocked()
	}
	c.mu.Unlock()
}

// failConnLocked marks the connection lost and fails every pending call
// with ErrConnClosed, returning their credits. Caller holds mu.
func (c *Client) failConnLocked() {
	if c.lost {
		return
	}
	c.lost = true
	if c.nc != nil {
		c.nc.Close()
	}
	for id, call := range c.pending {
		delete(c.pending, id)
		call.Err = ErrConnClosed
		c.releaseCredit()
		call.Done <- call
	}
}

func statusErr(status uint8) error {
	switch status {
	case netserve.StatusOK:
		return nil
	case netserve.StatusBusy:
		return ErrBusy
	case netserve.StatusDraining:
		return ErrDraining
	case netserve.StatusBadRequest:
		return ErrRejected
	case netserve.StatusIOError:
		return ErrIO
	default:
		return fmt.Errorf("netclient: unknown status %d", status)
	}
}

func opString(op uint8) string {
	if op == netserve.OpWrite {
		return "write"
	}
	return "read"
}

// Write issues a synchronous write of file[off, off+size). data may be nil
// (performance mode).
func (c *Client) Write(file string, off, size int64, data []byte) error {
	call := c.Go(netserve.OpWrite, file, off, size, data, nil)
	<-call.Done
	return call.Err
}

// Read issues a synchronous read of file[off, off+size) into buf (nil in
// performance mode).
func (c *Client) Read(file string, off, size int64, buf []byte) error {
	call := c.Go(netserve.OpRead, file, off, size, nil, buf)
	<-call.Done
	return call.Err
}

// Reconnect re-dials the server and re-handshakes the tenant namespace
// after a connection loss. Pending calls of the old connection have
// already failed with ErrConnClosed; calls issued after Reconnect returns
// run on the new session. Reconnect may run concurrently with Go/Write/
// Read (they fail fast while the connection is down) but not with itself.
func (c *Client) Reconnect() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrConnClosed
	}
	// Retire the old connection and its reader before handshaking anew.
	c.failConnLocked()
	c.mu.Unlock()
	return c.connect()
}

// Lost reports whether the connection is currently down.
func (c *Client) Lost() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lost || c.nc == nil
}

// Close tears the session down; pending calls fail with ErrConnClosed.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	c.failConnLocked()
}
