// Package profiling wires the standard pprof/trace collectors into the
// command-line tools, so hot paths can be inspected with `go tool pprof`
// and `go tool trace` without editing code.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Config names the output files; empty fields disable the collector.
type Config struct {
	// CPUProfile receives a pprof CPU profile for the whole run.
	CPUProfile string
	// MemProfile receives a heap profile taken at shutdown (after a GC).
	MemProfile string
	// Trace receives a runtime execution trace for the whole run.
	Trace string
	// MutexProfile receives a mutex-contention profile taken at shutdown.
	// Sampling runs for the whole process (SetMutexProfileFraction(1)) —
	// the serve path's lock-contention evidence for the epoch read work.
	MutexProfile string
	// BlockProfile receives a goroutine-blocking profile taken at
	// shutdown (SetBlockProfileRate(1) for the whole process).
	BlockProfile string
}

// Start begins the requested collectors and returns a stop function that
// must run exactly once at shutdown; it finalizes every output file.
func (c Config) Start() (func() error, error) {
	var cpuFile, traceFile *os.File
	fail := func(err error) (func() error, error) {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
		}
		return nil, err
	}
	if c.CPUProfile != "" {
		f, err := os.Create(c.CPUProfile)
		if err != nil {
			return fail(fmt.Errorf("profiling: %w", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(fmt.Errorf("profiling: start cpu profile: %w", err))
		}
		cpuFile = f
	}
	if c.Trace != "" {
		f, err := os.Create(c.Trace)
		if err != nil {
			return fail(fmt.Errorf("profiling: %w", err))
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			return fail(fmt.Errorf("profiling: start trace: %w", err))
		}
		traceFile = f
	}
	if c.MutexProfile != "" {
		runtime.SetMutexProfileFraction(1)
	}
	if c.BlockProfile != "" {
		runtime.SetBlockProfileRate(1)
	}
	stop := func() error {
		var firstErr error
		keep := func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if cpuFile != nil {
			pprof.StopCPUProfile()
			keep(cpuFile.Close())
		}
		if traceFile != nil {
			trace.Stop()
			keep(traceFile.Close())
		}
		if c.MemProfile != "" {
			f, err := os.Create(c.MemProfile)
			if err != nil {
				keep(err)
			} else {
				runtime.GC() // materialize final live-heap state
				keep(pprof.WriteHeapProfile(f))
				keep(f.Close())
			}
		}
		writeLookup := func(name, path string) {
			f, err := os.Create(path)
			if err != nil {
				keep(err)
				return
			}
			if p := pprof.Lookup(name); p != nil {
				keep(p.WriteTo(f, 0))
			}
			keep(f.Close())
		}
		if c.MutexProfile != "" {
			writeLookup("mutex", c.MutexProfile)
			runtime.SetMutexProfileFraction(0)
		}
		if c.BlockProfile != "" {
			writeLookup("block", c.BlockProfile)
			runtime.SetBlockProfileRate(0)
		}
		return firstErr
	}
	return stop, nil
}
