package names

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternDedup(t *testing.T) {
	a := NewArena()
	id1 := a.Intern("f1")
	id2 := a.Intern("f2")
	if id1 == id2 {
		t.Fatalf("distinct names share id %d", id1)
	}
	if got := a.Intern("f1"); got != id1 {
		t.Fatalf("re-intern f1: got %d want %d", got, id1)
	}
	if a.Count() != 2 {
		t.Fatalf("count = %d, want 2", a.Count())
	}
	if a.Name(id1) != "f1" || a.Name(id2) != "f2" {
		t.Fatalf("names: %q %q", a.Name(id1), a.Name(id2))
	}
}

func TestDenseIDs(t *testing.T) {
	a := NewArena()
	for i := 0; i < 1000; i++ {
		if id := a.Intern(fmt.Sprintf("file-%04d", i)); id != uint32(i) {
			t.Fatalf("id for #%d = %d, want dense", i, id)
		}
	}
	for i := 0; i < 1000; i++ {
		want := fmt.Sprintf("file-%04d", i)
		id, ok := a.Lookup(want)
		if !ok || id != uint32(i) {
			t.Fatalf("lookup %q: id=%d ok=%v", want, id, ok)
		}
		if a.Name(id) != want {
			t.Fatalf("name(%d) = %q, want %q", id, a.Name(id), want)
		}
	}
}

func TestLookupMiss(t *testing.T) {
	a := NewArena()
	a.Intern("present")
	if _, ok := a.Lookup("absent"); ok {
		t.Fatal("lookup of absent name succeeded")
	}
}

func TestEmptyName(t *testing.T) {
	a := NewArena()
	id := a.Intern("")
	if a.Name(id) != "" {
		t.Fatalf("empty name round-trip: %q", a.Name(id))
	}
	if got := a.Intern(""); got != id {
		t.Fatalf("re-intern empty: %d != %d", got, id)
	}
}

func TestLongName(t *testing.T) {
	a := NewArena()
	long := string(make([]byte, chunkSize+100))
	id := a.Intern(long)
	if a.Name(id) != long {
		t.Fatal("oversized name did not round-trip")
	}
}

func TestCanonicalShares(t *testing.T) {
	a := NewArena()
	c1 := a.Canonical("shared/name")
	c2 := a.Canonical("shared" + "/name")
	if c1 != c2 {
		t.Fatal("canonical values differ")
	}
}

func TestConcurrentIntern(t *testing.T) {
	a := NewArena()
	const workers = 8
	var wg sync.WaitGroup
	ids := make([][]uint32, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids[w] = make([]uint32, 500)
			for i := 0; i < 500; i++ {
				ids[w][i] = a.Intern(fmt.Sprintf("file-%03d", i))
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range ids[w] {
			if ids[w][i] != ids[0][i] {
				t.Fatalf("worker %d id[%d]=%d, worker 0 got %d", w, i, ids[w][i], ids[0][i])
			}
		}
	}
	if a.Count() != 500 {
		t.Fatalf("count = %d, want 500", a.Count())
	}
}

func TestLookupZeroAllocs(t *testing.T) {
	a := NewArena()
	for i := 0; i < 100; i++ {
		a.Intern(fmt.Sprintf("file-%03d", i))
	}
	name := "file-042"
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := a.Lookup(name); !ok {
			t.Fatal("miss")
		}
		a.Name(42)
		a.Intern(name) // steady-state re-intern is a read-locked lookup
	})
	if allocs != 0 {
		t.Fatalf("lookup path allocates %.1f/op, want 0", allocs)
	}
}
