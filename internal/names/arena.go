// Package names provides a shared file-name interning arena: every
// distinct name is stored exactly once in chunked, append-only byte
// storage and addressed by a dense uint32 id. The metadata tables
// (internal/dmt, internal/cdt) and the per-shard bookkeeping in
// internal/core share one arena per engine, so a million-file workload
// pays for each name's bytes once instead of once per table.
//
// Ids are dense (0, 1, 2, ...), which lets tables replace
// map[string]-keyed state with slice- or id-keyed addressing. Interned
// bytes never move: chunks are fixed-capacity and append-only, so the
// canonical string returned by Name stays valid for the arena's
// lifetime. The arena is safe for concurrent use, and reads (Lookup,
// Name) are lock-free and allocation-free: they load an atomically
// published index snapshot, so serve paths that consult the arena never
// contend on a mutex — not even a read lock. Writers (Intern of a new
// name) serialize on a mutex and publish a fresh snapshot per name;
// interning an existing name takes the lock-free read path.
package names

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// chunkSize is the byte capacity of one storage chunk. Names longer
// than a chunk get a dedicated chunk of their exact size.
const chunkSize = 1 << 16

// loc addresses one interned name inside the chunk storage.
type loc struct {
	chunk uint32
	off   uint32
	len   uint32
}

// arenaIndex is one published snapshot of the arena. locs and chunks
// are append-only: a writer extends them past the snapshotted lengths
// (in place when capacity allows — old readers never index beyond their
// own lengths) and publishes the next snapshot with the longer views.
// Chunk byte arrays are allocated at full length up front and filled
// through the fill cursor, so a published chunk header is never
// rewritten; writers copy new name bytes into the unfilled region,
// which no published loc can reach.
//
// The hash table is shared across snapshots and mutated in place
// through atomic slot stores. A reader probing an old snapshot may see
// a slot holding an id newer than its locs view; it treats that slot as
// occupied by some other name and probes on — exactly the chain it
// would have walked before the slot was filled, since insertions only
// claim previously empty slots. Growth allocates a fresh table, after
// which the old one is never written again.
type arenaIndex struct {
	table []atomic.Int32 // open-addressed hash slots: id+1, 0 = empty
	mask  uint32
	locs  []loc
	// chunks holds the interned bytes; fill is the used byte count of
	// the last chunk (earlier chunks are never appended to again).
	chunks [][]byte
	fill   uint32
	bytes  int64 // interned name bytes
}

// Arena is a concurrent string-interning arena. Use NewArena.
type Arena struct {
	mu  sync.Mutex // serializes writers (Intern of a new name)
	idx atomic.Pointer[arenaIndex]
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	a := &Arena{}
	a.idx.Store(&arenaIndex{table: make([]atomic.Int32, 64), mask: 63})
	return a
}

func hashName(s string) uint32 {
	// FNV-1a, matching the stripe routing hashes elsewhere in the tree.
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// name returns the canonical string of id within this snapshot.
func (x *arenaIndex) name(id uint32) string {
	l := x.locs[id]
	if l.len == 0 {
		return ""
	}
	c := x.chunks[l.chunk]
	// Chunks are append-only and never reallocated, so the returned
	// string view stays valid forever.
	return unsafe.String(&c[l.off], int(l.len))
}

// probe finds s in the snapshot. Returns the slot index and whether the
// name is present (id at that slot). Slots holding ids newer than the
// snapshot read as occupied-by-other (see the type comment).
func (x *arenaIndex) probe(s string, h uint32) (slot uint32, id uint32, ok bool) {
	slot = h & x.mask
	for {
		v := x.table[slot].Load()
		if v == 0 {
			return slot, 0, false
		}
		id = uint32(v - 1)
		if int(id) < len(x.locs) && x.name(id) == s {
			return slot, id, true
		}
		slot = (slot + 1) & x.mask
	}
}

// Lookup returns the id of s if it has been interned. Lock-free and
// allocation-free — safe on zero-alloc serve paths.
func (a *Arena) Lookup(s string) (uint32, bool) {
	x := a.idx.Load()
	_, id, ok := x.probe(s, hashName(s))
	return id, ok
}

// Intern returns the id of s, adding it to the arena if new. The first
// interning of a name copies its bytes into the arena; subsequent calls
// are lock-free lookups.
func (a *Arena) Intern(s string) uint32 {
	h := hashName(s)
	if _, id, ok := a.idx.Load().probe(s, h); ok {
		return id
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	old := a.idx.Load()
	slot, id, ok := old.probe(s, h)
	if ok {
		return id
	}
	next := &arenaIndex{
		table: old.table, mask: old.mask,
		locs: old.locs, chunks: old.chunks, fill: old.fill, bytes: old.bytes,
	}
	id = uint32(len(next.locs))
	next.locs = append(next.locs, next.store(s))
	next.bytes += int64(len(s))
	if uint32(len(next.locs))*4 >= uint32(len(next.table))*3 {
		next.grow()
	} else {
		// Readers of older snapshots guard against the fresh id; the
		// publish below is the release edge for readers of this one.
		next.table[slot].Store(int32(id + 1))
	}
	a.idx.Store(next)
	return id
}

// store copies s into chunk storage and returns its location. Caller
// holds the writer lock. New chunks are allocated at full length so
// their headers never change after publication; only the unfilled tail
// bytes — unreachable from any published loc — are written.
func (x *arenaIndex) store(s string) loc {
	if len(s) == 0 {
		return loc{}
	}
	if len(s) > chunkSize {
		c := make([]byte, len(s))
		copy(c, s)
		x.chunks = append(x.chunks, c)
		x.fill = uint32(len(s))
		return loc{chunk: uint32(len(x.chunks) - 1), off: 0, len: uint32(len(s))}
	}
	n := len(x.chunks)
	if n == 0 || int(x.fill)+len(s) > len(x.chunks[n-1]) {
		x.chunks = append(x.chunks, make([]byte, chunkSize))
		n++
		x.fill = 0
	}
	off := x.fill
	copy(x.chunks[n-1][off:], s)
	x.fill = off + uint32(len(s))
	return loc{chunk: uint32(n - 1), off: off, len: uint32(len(s))}
}

// grow rehashes every id — the just-appended one included — into a
// doubled, freshly allocated table. The old table takes no further
// writes once its successor is published.
func (x *arenaIndex) grow() {
	old := x.table
	x.table = make([]atomic.Int32, 2*len(old))
	x.mask = uint32(len(x.table) - 1)
	for id := range x.locs {
		slot := hashName(x.name(uint32(id))) & x.mask
		for x.table[slot].Load() != 0 {
			slot = (slot + 1) & x.mask
		}
		x.table[slot].Store(int32(id + 1))
	}
}

// Name returns the canonical interned string of id. The returned string
// aliases arena storage and stays valid for the arena's lifetime.
// Panics on an id the arena never issued, like a slice bounds error.
// Lock-free and allocation-free.
func (a *Arena) Name(id uint32) string {
	return a.idx.Load().name(id)
}

// Canonical interns s and returns the arena's canonical copy, letting
// callers key maps with shared backing bytes instead of private copies.
func (a *Arena) Canonical(s string) string {
	return a.Name(a.Intern(s))
}

// Count returns how many distinct names are interned.
func (a *Arena) Count() int {
	return len(a.idx.Load().locs)
}

// Bytes returns the arena's memory footprint: chunk lengths plus the
// index structures. Deterministic for a given interning sequence.
func (a *Arena) Bytes() int64 {
	x := a.idx.Load()
	n := int64(len(x.table))*4 + int64(len(x.locs))*12
	for _, c := range x.chunks {
		n += int64(len(c))
	}
	return n
}

// NameBytes returns the total interned name bytes (without index or
// slack overhead) — the irreducible cost of the name set.
func (a *Arena) NameBytes() int64 {
	return a.idx.Load().bytes
}
