package netserve

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Engine is the serve surface the frontend dispatches into. core.Concurrent
// satisfies it; done always runs asynchronously with respect to the call
// (the sim.Clock invariant), from an arbitrary goroutine.
type Engine interface {
	Write(rank int, file string, off, size int64, data []byte, done func(error)) error
	Read(rank int, file string, off, size int64, buf []byte, done func(error)) error
}

// Config assembles a Server.
type Config struct {
	// Engine is the concurrent S4D engine requests dispatch into.
	Engine Engine
	// Addr is the TCP listen address; empty means "127.0.0.1:0" (loopback,
	// kernel-chosen port — the bench and test default).
	Addr string
	// Window is the per-connection in-flight request bound granted at
	// HELLO; requests beyond it are answered BUSY, never queued. 0 means 32.
	Window int
	// MaxInFlight bounds in-flight requests across all connections — the
	// server-wide admission budget under connection storms. 0 means
	// unlimited (the per-connection windows still bound each client).
	MaxInFlight int
	// Payload enables functional mode: write payloads are carried on the
	// wire and handed to the engine, reads return data bytes. False is
	// performance mode — frames carry no data, matching the engine's
	// metadata-only stores.
	Payload bool
	// WrapConn, if non-nil, wraps every accepted connection (fault
	// injection: faults.Injector.WrapConn). The int is the connection's
	// serve rank.
	WrapConn func(c net.Conn, id int) net.Conn
}

// Stats is a snapshot of server activity counters.
type Stats struct {
	Accepted    uint64
	Conns       int
	Requests    uint64
	Busy        uint64
	Drained     uint64
	BadRequests uint64
	IOErrors    uint64
	InFlight    int64
}

// Server is the TCP frontend. One goroutine accepts; each connection runs
// a reader goroutine (decode → dispatch) and a writer goroutine (encode →
// socket), so pipelined requests complete out of order and a slow client
// only ever stalls itself.
type Server struct {
	cfg      Config
	ln       net.Listener
	draining atomic.Bool
	closed   atomic.Bool
	global   atomic.Int64

	mu    sync.Mutex
	conns map[int]*sconn
	next  int

	wg sync.WaitGroup

	accepted, requests            atomic.Uint64
	busy, drained                 atomic.Uint64
	badRequests, ioErrors         atomic.Uint64
	writeErrors, protocolAborts   atomic.Uint64
	helloAccepts, payloadRequests atomic.Uint64
}

// Serve starts a server listening on cfg.Addr.
func Serve(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("netserve: engine is required")
	}
	if cfg.Window <= 0 {
		cfg.Window = 32
	}
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("netserve: listen: %w", err)
	}
	s := &Server{cfg: cfg, ln: ln, conns: make(map[int]*sconn)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address ("127.0.0.1:<port>").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Window returns the per-connection in-flight bound granted at HELLO.
func (s *Server) Window() int { return s.cfg.Window }

// Stats snapshots the activity counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	n := len(s.conns)
	s.mu.Unlock()
	return Stats{
		Accepted:    s.accepted.Load(),
		Conns:       n,
		Requests:    s.requests.Load(),
		Busy:        s.busy.Load(),
		Drained:     s.drained.Load(),
		BadRequests: s.badRequests.Load(),
		IOErrors:    s.ioErrors.Load(),
		InFlight:    s.global.Load(),
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed: drain or shutdown
		}
		if s.draining.Load() || s.closed.Load() {
			nc.Close()
			continue
		}
		s.accepted.Add(1)
		s.mu.Lock()
		id := s.next
		s.next++
		if s.cfg.WrapConn != nil {
			nc = s.cfg.WrapConn(nc, id)
		}
		c := newSConn(s, id, nc)
		s.conns[id] = c
		s.mu.Unlock()
		s.wg.Add(2)
		go c.readLoop()
		go c.writeLoop()
	}
}

// Drain gracefully shuts the server down: stop accepting, answer new
// requests with DRAINING, let every in-flight request complete and its
// response flush, then close the connections. Returns ctx.Err() if the
// context expires first (connections are then closed abruptly).
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.ln.Close()
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	var err error
wait:
	for {
		if s.global.Load() == 0 {
			break
		}
		select {
		case <-ctx.Done():
			err = ctx.Err()
			break wait
		case <-tick.C:
		}
	}
	s.closeConns()
	s.wg.Wait()
	s.closed.Store(true)
	return err
}

// Close shuts the server down abruptly: the listener and every connection
// close immediately — the crash half of the crash/drain torture. In-flight
// engine completions are still drained internally (their responses go to
// closed sockets and are discarded).
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.draining.Store(true)
	s.ln.Close()
	s.closeConns()
	s.wg.Wait()
}

func (s *Server) closeConns() {
	s.mu.Lock()
	for _, c := range s.conns {
		c.nc.Close()
	}
	s.mu.Unlock()
}

func (s *Server) removeConn(id int) {
	s.mu.Lock()
	delete(s.conns, id)
	s.mu.Unlock()
}

// request is one in-flight request's context: pooled per connection, its
// buffer carrying first the decoded name+payload and later the encoded
// response. doneFn is bound once at construction so dispatching into the
// engine allocates nothing.
type request struct {
	c      *sconn
	id     uint64
	op     uint8
	status uint8
	flags  uint8
	value  int64
	size   int64 // response payload length (payload-mode reads)

	qual       string // namespaced "tenant|name"
	off        int64
	reqSize    int64
	payloadOff int64 // write payload position inside buf (after the name)
	hasPayload bool
	counted    bool // holds a window slot (in-flight accounting)

	buf    []byte
	done   atomic.Bool
	doneFn func(error)
}

// complete is the engine completion callback (via doneFn). The done guard
// makes it idempotent: an engine path that both returns an error and fires
// the callback cannot double-release the request.
func (r *request) complete(err error) {
	if r.done.Swap(true) {
		return
	}
	if err != nil {
		r.status = StatusIOError
		r.size = 0
		r.c.srv.ioErrors.Add(1)
	} else {
		r.status = StatusOK
	}
	r.c.out <- r
}

// sconn is one accepted connection.
type sconn struct {
	srv *Server
	id  int
	nc  net.Conn
	br  *bufio.Reader

	// out carries completed requests to the writer. Capacity covers the
	// full window plus control responses; when a client floods past its
	// window the reader eventually blocks sending BUSY here, which stops
	// socket reads — TCP backpressure, never an unbounded queue.
	out chan *request

	// free recycles request contexts between writer (release) and reader
	// (acquire); a channel rather than sync.Pool so the steady-state path
	// is deterministically allocation-free.
	free chan *request

	inflight   atomic.Int32
	readerDone atomic.Bool
	finished   atomic.Bool

	tenant string
	names  map[string]string // wire name -> "tenant|name", reader-owned

	// hdr is the reader-owned header scratch; a stack array would escape
	// through the io.ReadFull interface call and cost an allocation per
	// request.
	hdr [ReqHdrLen]byte
}

func newSConn(s *Server, id int, nc net.Conn) *sconn {
	return &sconn{
		srv:  s,
		id:   id,
		nc:   nc,
		br:   bufio.NewReaderSize(nc, 64<<10),
		out:  make(chan *request, s.cfg.Window+8),
		free: make(chan *request, s.cfg.Window+8),
	}
}

func (c *sconn) acquire() *request {
	select {
	case r := <-c.free:
		return r
	default:
		r := &request{c: c}
		r.doneFn = r.complete
		return r
	}
}

func (c *sconn) release(r *request) {
	r.counted = false
	r.flags = 0
	r.value = 0
	r.size = 0
	r.done.Store(false)
	select {
	case c.free <- r:
	default:
	}
}

// respond enqueues a control response (no dispatch, no window slot).
func (c *sconn) respond(r *request, status uint8) {
	r.status = status
	r.done.Store(true)
	c.out <- r
}

// readLoop decodes frames and dispatches them until the connection dies or
// a protocol error aborts it.
func (c *sconn) readLoop() {
	defer c.srv.wg.Done()
	for {
		r, fatal, err := c.readFrame(c.br)
		if err != nil {
			if fatal && r != nil {
				// Protocol error with a response owed: send BAD_REQUEST, then
				// stop reading — the stream can no longer be trusted.
				c.srv.badRequests.Add(1)
				c.srv.protocolAborts.Add(1)
				c.respond(r, StatusBadRequest)
			}
			break
		}
		if r == nil {
			continue // handled inside readFrame (hello response)
		}
		c.dispatch(r)
	}
	c.readerDone.Store(true)
	c.maybeFinish()
}

// readFrame reads and decodes one request: the fixed header, then name and
// payload in a single buffered read into the pooled request buffer. A nil
// error with a nil request means the frame was handled internally (hello);
// fatal marks protocol errors that owe a BAD_REQUEST response before the
// connection closes.
func (c *sconn) readFrame(br *bufio.Reader) (r *request, fatal bool, err error) {
	if _, err := io.ReadFull(br, c.hdr[:]); err != nil {
		return nil, false, err
	}
	h := ParseReqHeader(c.hdr[:])
	r = c.acquire()
	r.id = h.ID
	r.op = h.Op
	if h.NameLen == 0 || int(h.NameLen) > MaxNameLen || h.Size < 0 || h.Size > MaxPayload || h.Off < 0 && h.Op != OpHello {
		return r, true, fmt.Errorf("netserve: bad frame (op=%d nameLen=%d off=%d size=%d)", h.Op, h.NameLen, h.Off, h.Size)
	}
	extra := int64(h.NameLen)
	carried := int64(0)
	if h.Flags&FlagPayload != 0 {
		carried = h.Size
		extra += carried
	}
	// Size the pooled buffer for both the inbound bytes and the outbound
	// response (header + read payload) so no second grow happens later.
	need := extra
	if c.srv.cfg.Payload && h.Op == OpRead {
		if n := int64(RespHdrLen) + h.Size; n > need {
			need = n
		}
	}
	if int64(cap(r.buf)) < need {
		r.buf = make([]byte, need)
	}
	r.buf = r.buf[:cap(r.buf)]
	if _, err := io.ReadFull(br, r.buf[:extra]); err != nil {
		c.release(r)
		return nil, false, err
	}
	nameB := r.buf[:h.NameLen]

	switch h.Op {
	case OpHello:
		if c.tenant != "" || h.Off != ProtoMagic || h.Size != ProtoVersion {
			return r, true, fmt.Errorf("netserve: bad hello")
		}
		c.tenant = string(nameB)
		c.names = make(map[string]string)
		c.srv.helloAccepts.Add(1)
		r.value = int64(c.srv.cfg.Window)
		if c.srv.cfg.Payload {
			r.flags = FlagPayload
		}
		r.op = OpHello
		r.status = StatusOK
		r.done.Store(true)
		c.out <- r
		return nil, false, nil
	case OpWrite, OpRead:
		if c.tenant == "" {
			return r, true, fmt.Errorf("netserve: request before hello")
		}
		if h.Size == 0 || h.Op == OpRead && carried != 0 {
			return r, true, fmt.Errorf("netserve: bad %s frame", opString(h.Op))
		}
		// Qualified-name interning: the map lookup with a []byte key does
		// not allocate; only a connection's first use of a name builds the
		// "tenant|name" string.
		qual, ok := c.names[string(nameB)]
		if !ok {
			qual = TenantName(c.tenant, string(nameB))
			c.names[qual[len(c.tenant)+1:]] = qual
		}
		r.qual = qual
		r.off = h.Off
		r.reqSize = h.Size
		r.payloadOff = int64(h.NameLen)
		r.hasPayload = carried != 0
		return r, false, nil
	default:
		return r, true, fmt.Errorf("netserve: unknown op %d", h.Op)
	}
}

func opString(op uint8) string {
	switch op {
	case OpHello:
		return "hello"
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	default:
		return "op?"
	}
}

// dispatch admits one decoded request into the engine, or answers BUSY /
// DRAINING without dispatching. Window accounting: a slot is held from
// here until the response hits the socket (writeResponse), so the bound
// covers the full server-side life of a request.
func (c *sconn) dispatch(r *request) {
	s := c.srv
	s.requests.Add(1)
	if s.draining.Load() {
		s.drained.Add(1)
		c.respond(r, StatusDraining)
		return
	}
	if int(c.inflight.Load()) >= s.cfg.Window {
		s.busy.Add(1)
		c.respond(r, StatusBusy)
		return
	}
	if max := int64(s.cfg.MaxInFlight); max > 0 && s.global.Load() >= max {
		s.busy.Add(1)
		c.respond(r, StatusBusy)
		return
	}
	r.counted = true
	c.inflight.Add(1)
	s.global.Add(1)

	var err error
	switch r.op {
	case OpWrite:
		var data []byte
		if r.hasPayload {
			data = r.buf[r.payloadOff : r.payloadOff+r.reqSize]
			s.payloadRequests.Add(1)
		}
		err = s.cfg.Engine.Write(c.id, r.qual, r.off, r.reqSize, data, r.doneFn)
	case OpRead:
		var buf []byte
		if s.cfg.Payload {
			r.size = r.reqSize
			buf = r.buf[RespHdrLen : RespHdrLen+r.reqSize]
		}
		err = s.cfg.Engine.Read(c.id, r.qual, r.off, r.reqSize, buf, r.doneFn)
	}
	if err != nil {
		// Synchronous rejection (bad range, engine shutting down): complete
		// here; the done guard protects against a late duplicate callback.
		r.complete(err)
	}
}

// writeLoop encodes and writes responses, releases window slots, and
// recycles request contexts. It exits when the reader is done and the last
// in-flight request has been answered; write errors don't stop it — the
// remaining completions still need their accounting drained.
func (c *sconn) writeLoop() {
	defer c.srv.wg.Done()
	for r := range c.out {
		c.writeResponse(r, c.nc)
	}
	c.nc.Close()
	c.srv.removeConn(c.id)
}

// writeResponse encodes one response into the request's own buffer (header
// and any read payload are contiguous, one socket write) and releases the
// request.
func (c *sconn) writeResponse(r *request, w io.Writer) {
	payload := int64(0)
	if r.status == StatusOK && r.op == OpRead && c.srv.cfg.Payload {
		payload = r.size
	}
	need := int64(RespHdrLen) + payload
	if int64(cap(r.buf)) < need {
		r.buf = make([]byte, need)
	}
	b := r.buf[:need]
	PutRespHeader(b, RespHeader{
		ID:         r.id,
		Status:     r.status,
		Flags:      r.flags,
		Value:      r.value,
		PayloadLen: uint32(payload),
	})
	if _, err := w.Write(b); err != nil {
		c.srv.writeErrors.Add(1)
	}
	counted := r.counted
	c.release(r)
	if counted {
		c.inflight.Add(-1)
		c.srv.global.Add(-1)
		c.maybeFinish()
	}
}

// maybeFinish closes the response channel once the reader has exited and
// the last in-flight request has been written — the only state in which no
// goroutine can still send on out. Exactly one caller wins the swap.
func (c *sconn) maybeFinish() {
	if c.readerDone.Load() && c.inflight.Load() == 0 && !c.finished.Swap(true) {
		close(c.out)
	}
}
