package netserve_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"s4dcache/internal/netclient"
	"s4dcache/internal/netserve"
)

// stubEngine is an in-memory Engine: writes copy their payload at call
// time (the zero-copy contract — the server recycles the frame buffer
// once done fires), reads fill the caller's buffer at call time, and
// completions are delivered asynchronously, optionally gated so tests can
// hold requests in flight.
type stubEngine struct {
	mu       sync.Mutex
	files    map[string][]byte
	gate     chan struct{} // non-nil: completions wait for a token
	gateOnly string        // non-empty: only this (namespaced) file is gated
	delay    time.Duration
}

func newStubEngine() *stubEngine { return &stubEngine{files: make(map[string][]byte)} }

func (e *stubEngine) extend(file string, off, size int64) []byte {
	b := e.files[file]
	if int64(len(b)) < off+size {
		nb := make([]byte, off+size)
		copy(nb, b)
		b = nb
		e.files[file] = b
	}
	return b
}

func (e *stubEngine) complete(file string, done func(error)) {
	gate := e.gate
	if e.gateOnly != "" && file != e.gateOnly {
		gate = nil
	}
	delay := e.delay
	go func() {
		if gate != nil {
			<-gate
		}
		if delay > 0 {
			time.Sleep(delay)
		}
		done(nil)
	}()
}

func (e *stubEngine) Write(rank int, file string, off, size int64, data []byte, done func(error)) error {
	if off < 0 || size <= 0 {
		return fmt.Errorf("stub: bad range")
	}
	e.mu.Lock()
	b := e.extend(file, off, size)
	if data != nil {
		copy(b[off:off+size], data)
	}
	e.mu.Unlock()
	e.complete(file, done)
	return nil
}

func (e *stubEngine) Read(rank int, file string, off, size int64, buf []byte, done func(error)) error {
	if off < 0 || size <= 0 {
		return fmt.Errorf("stub: bad range")
	}
	e.mu.Lock()
	b := e.extend(file, off, size)
	if buf != nil {
		copy(buf, b[off:off+size])
	}
	e.mu.Unlock()
	e.complete(file, done)
	return nil
}

func (e *stubEngine) bytesOf(file string) []byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]byte(nil), e.files[file]...)
}

func startServer(t *testing.T, cfg netserve.Config) *netserve.Server {
	t.Helper()
	srv, err := netserve.Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

func dial(t *testing.T, srv *netserve.Server, opts netclient.Options) *netclient.Client {
	t.Helper()
	cl, err := netclient.Dial(srv.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

// TestWriteReadRoundTrip checks payload-mode data integrity end to end and
// that file names reach the engine namespaced as "tenant|name".
func TestWriteReadRoundTrip(t *testing.T) {
	eng := newStubEngine()
	srv := startServer(t, netserve.Config{Engine: eng, Payload: true})
	cl := dial(t, srv, netclient.Options{Tenant: "acme"})
	if !cl.PayloadMode() {
		t.Fatal("client did not learn payload mode from hello")
	}

	data := bytes.Repeat([]byte("s4d!"), 1024)
	if err := cl.Write("data.bin", 128, int64(len(data)), data); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, len(data))
	if err := cl.Read("data.bin", 128, int64(len(data)), buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("read bytes differ from written bytes")
	}
	if got := eng.bytesOf(netserve.TenantName("acme", "data.bin")); len(got) == 0 {
		t.Fatal("engine saw no tenant-namespaced file")
	}
	if got := eng.bytesOf("data.bin"); len(got) != 0 {
		t.Fatal("engine saw an un-namespaced file name")
	}
}

// TestTenantIsolation writes the same file name under two tenants and
// checks each reads back its own bytes.
func TestTenantIsolation(t *testing.T) {
	eng := newStubEngine()
	srv := startServer(t, netserve.Config{Engine: eng, Payload: true})
	a := dial(t, srv, netclient.Options{Tenant: "a"})
	b := dial(t, srv, netclient.Options{Tenant: "b"})

	da := bytes.Repeat([]byte{0xaa}, 4096)
	db := bytes.Repeat([]byte{0xbb}, 4096)
	if err := a.Write("shared", 0, 4096, da); err != nil {
		t.Fatal(err)
	}
	if err := b.Write("shared", 0, 4096, db); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	if err := a.Read("shared", 0, 4096, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, da) {
		t.Fatal("tenant a read tenant b's bytes")
	}
	if err := b.Read("shared", 0, 4096, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, db) {
		t.Fatal("tenant b read tenant a's bytes")
	}
}

// TestPipelinedOutOfOrder issues a slow request then a fast one on the
// same connection and checks the fast one completes first — completions
// are matched by id, not order.
func TestPipelinedOutOfOrder(t *testing.T) {
	eng := newStubEngine()
	eng.gate = make(chan struct{}, 2)
	// Gate only the slow request: a shared token could be claimed by
	// either completion goroutine depending on scheduling.
	eng.gateOnly = netserve.TenantName("t", "f")
	srv := startServer(t, netserve.Config{Engine: eng})
	cl := dial(t, srv, netclient.Options{Tenant: "t"})

	slow := cl.Go(netserve.OpWrite, "f", 0, 1024, nil, nil)
	fast := cl.Go(netserve.OpWrite, "g", 0, 1024, nil, nil)
	select {
	case <-fast.Done:
	case <-slow.Done:
		t.Fatal("slow request completed before its gate token")
	case <-time.After(5 * time.Second):
		t.Fatal("fast request never completed")
	}
	if fast.Err != nil {
		t.Fatalf("fast: %v", fast.Err)
	}
	eng.gate <- struct{}{}
	<-slow.Done
	if slow.Err != nil {
		t.Fatalf("slow: %v", slow.Err)
	}
}

// TestBusyWindow floods a window-2 server from a credit-less client and
// checks overflow requests are answered BUSY without queuing, while the
// in-flight ones still complete.
func TestBusyWindow(t *testing.T) {
	eng := newStubEngine()
	eng.gate = make(chan struct{}, 16)
	srv := startServer(t, netserve.Config{Engine: eng, Window: 2})
	cl := dial(t, srv, netclient.Options{Tenant: "t", Credits: -1})

	var calls []*netclient.Call
	for i := 0; i < 6; i++ {
		calls = append(calls, cl.Go(netserve.OpWrite, "f", int64(i)*4096, 4096, nil, nil))
	}
	// The overflow responses arrive while the first two stay gated.
	busy := 0
	deadline := time.After(5 * time.Second)
	for _, c := range calls[2:] {
		select {
		case <-c.Done:
			if errors.Is(c.Err, netclient.ErrBusy) {
				busy++
			} else {
				t.Fatalf("overflow call: got %v, want ErrBusy", c.Err)
			}
		case <-deadline:
			t.Fatal("overflow calls not answered while window full")
		}
	}
	if busy != 4 {
		t.Fatalf("busy=%d, want 4", busy)
	}
	for i := 0; i < 2; i++ {
		eng.gate <- struct{}{}
	}
	for _, c := range calls[:2] {
		<-c.Done
		if c.Err != nil {
			t.Fatalf("in-flight call: %v", c.Err)
		}
	}
	if st := srv.Stats(); st.Busy != 4 {
		t.Fatalf("server busy counter %d, want 4", st.Busy)
	}
}

// TestGlobalBudget checks the server-wide MaxInFlight admission cap across
// connections.
func TestGlobalBudget(t *testing.T) {
	eng := newStubEngine()
	eng.gate = make(chan struct{}, 16)
	srv := startServer(t, netserve.Config{Engine: eng, Window: 8, MaxInFlight: 1})
	a := dial(t, srv, netclient.Options{Tenant: "a", Credits: -1})
	b := dial(t, srv, netclient.Options{Tenant: "b", Credits: -1})

	first := a.Go(netserve.OpWrite, "f", 0, 4096, nil, nil)
	// Wait until the server holds the budget before the second request.
	waitFor(t, func() bool { return srv.Stats().InFlight == 1 })
	second := b.Go(netserve.OpWrite, "f", 0, 4096, nil, nil)
	<-second.Done
	if !errors.Is(second.Err, netclient.ErrBusy) {
		t.Fatalf("second conn: got %v, want ErrBusy", second.Err)
	}
	eng.gate <- struct{}{}
	<-first.Done
	if first.Err != nil {
		t.Fatalf("first: %v", first.Err)
	}
}

// TestDrain holds a request in flight, drains the server, and checks: the
// in-flight request completes OK, a request issued during the drain gets
// ErrDraining, and new connections are refused.
func TestDrain(t *testing.T) {
	eng := newStubEngine()
	eng.gate = make(chan struct{}, 16)
	srv, err := netserve.Serve(netserve.Config{Engine: eng, Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	cl := dial(t, srv, netclient.Options{Tenant: "t"})

	inflight := cl.Go(netserve.OpWrite, "f", 0, 4096, nil, nil)
	waitFor(t, func() bool { return srv.Stats().InFlight == 1 })

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(context.Background()) }()
	// The drain flag flips before the listener closes, so once a fresh
	// dial is refused the flag is guaranteed visible — only then is a
	// probe request deterministically rejected (probing earlier could
	// get admitted and parked on the gated engine forever).
	waitFor(t, func() bool {
		nc, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			return true
		}
		nc.Close()
		return false
	})
	rejected := cl.Go(netserve.OpWrite, "g", 0, 4096, nil, nil)
	<-rejected.Done
	if !errors.Is(rejected.Err, netclient.ErrDraining) {
		t.Fatalf("during drain: got %v, want ErrDraining", rejected.Err)
	}

	eng.gate <- struct{}{}
	<-inflight.Done
	if inflight.Err != nil {
		t.Fatalf("in-flight during drain: %v", inflight.Err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := netclient.Dial(srv.Addr(), netclient.Options{Tenant: "t", DialTimeout: 200 * time.Millisecond}); err == nil {
		t.Fatal("dial succeeded after drain")
	}
}

// TestServerCloseFailsPending checks an abrupt server close surfaces
// ErrConnClosed on pending calls, and Reconnect restores service once a
// new server listens on the same address.
func TestServerCloseFailsPending(t *testing.T) {
	eng := newStubEngine()
	eng.gate = make(chan struct{}, 16)
	srv, err := netserve.Serve(netserve.Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	cl, err := netclient.Dial(addr, netclient.Options{Tenant: "t"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)

	pending := cl.Go(netserve.OpWrite, "f", 0, 4096, nil, nil)
	waitFor(t, func() bool { return srv.Stats().InFlight == 1 })
	// Close with the completion still gated so the response cannot race
	// ahead of the socket teardown; Close blocks on the writer draining
	// the in-flight request, so it runs concurrently and the gate opens
	// only once the client has seen the connection die.
	closed := make(chan struct{})
	go func() { srv.Close(); close(closed) }()
	<-pending.Done
	eng.gate <- struct{}{} // let the engine completion fire into the dying server
	<-closed
	if !errors.Is(pending.Err, netclient.ErrConnClosed) {
		t.Fatalf("pending after crash: got %v, want ErrConnClosed", pending.Err)
	}
	if err := cl.Write("f", 0, 4096, nil); !errors.Is(err, netclient.ErrConnClosed) {
		t.Fatalf("write while lost: got %v, want ErrConnClosed", err)
	}

	// Restart on the same address and re-handshake.
	eng2 := newStubEngine()
	var srv2 *netserve.Server
	waitFor(t, func() bool {
		srv2, err = netserve.Serve(netserve.Config{Engine: eng2, Addr: addr})
		return err == nil
	})
	t.Cleanup(srv2.Close)
	if err := cl.Reconnect(); err != nil {
		t.Fatalf("reconnect: %v", err)
	}
	if err := cl.Write("f", 0, 4096, nil); err != nil {
		t.Fatalf("write after reconnect: %v", err)
	}
	if got := eng2.bytesOf(netserve.TenantName("t", "f")); len(got) != 4096 {
		t.Fatal("reconnect did not re-handshake the tenant namespace")
	}
}

// TestHelloRequired checks a request before HELLO is rejected and the
// connection closed.
func TestHelloRequired(t *testing.T) {
	srv := startServer(t, netserve.Config{Engine: newStubEngine()})
	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	var b [netserve.ReqHdrLen + 1]byte
	netserve.PutReqHeader(b[:], netserve.ReqHeader{ID: 1, Op: netserve.OpWrite, NameLen: 1, Size: 4096})
	b[netserve.ReqHdrLen] = 'f'
	if _, err := nc.Write(b[:]); err != nil {
		t.Fatal(err)
	}
	var resp [netserve.RespHdrLen]byte
	if _, err := io.ReadFull(nc, resp[:]); err != nil {
		t.Fatal(err)
	}
	if h := netserve.ParseRespHeader(resp[:]); h.Status != netserve.StatusBadRequest {
		t.Fatalf("status %s, want BAD_REQUEST", netserve.StatusString(h.Status))
	}
	// The connection must then close (protocol error is fatal).
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(nc, resp[:1]); err != io.EOF {
		t.Fatalf("conn still open after protocol error: %v", err)
	}
}

// TestBadFrame checks size/name validation answers BAD_REQUEST.
func TestBadFrame(t *testing.T) {
	srv := startServer(t, netserve.Config{Engine: newStubEngine()})
	cl := dial(t, srv, netclient.Options{Tenant: "t"})
	// Client-side validation rejects locally.
	if err := cl.Write("f", -1, 4096, nil); err == nil || errors.Is(err, netclient.ErrConnClosed) {
		t.Fatalf("negative offset: %v", err)
	}
	if err := cl.Write("", 0, 4096, nil); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := cl.Write("f", 0, netserve.MaxPayload+1, nil); err == nil {
		t.Fatal("oversized request accepted")
	}
	// And a raw oversized frame is rejected by the server.
	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	hello := make([]byte, netserve.ReqHdrLen+1)
	netserve.PutReqHeader(hello, netserve.ReqHeader{Op: netserve.OpHello, NameLen: 1, Off: netserve.ProtoMagic, Size: netserve.ProtoVersion})
	hello[netserve.ReqHdrLen] = 't'
	if _, err := nc.Write(hello); err != nil {
		t.Fatal(err)
	}
	var resp [netserve.RespHdrLen]byte
	if _, err := io.ReadFull(nc, resp[:]); err != nil {
		t.Fatal(err)
	}
	bad := make([]byte, netserve.ReqHdrLen+1)
	netserve.PutReqHeader(bad, netserve.ReqHeader{ID: 9, Op: netserve.OpRead, NameLen: 1, Size: netserve.MaxPayload + 1})
	bad[netserve.ReqHdrLen] = 'f'
	if _, err := nc.Write(bad); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(nc, resp[:]); err != nil {
		t.Fatal(err)
	}
	if h := netserve.ParseRespHeader(resp[:]); h.Status != netserve.StatusBadRequest || h.ID != 9 {
		t.Fatalf("got id=%d status=%s, want id=9 BAD_REQUEST", h.ID, netserve.StatusString(h.Status))
	}
}

// TestCreditTracking checks a cooperative client (credits = granted
// window) never draws BUSY even when oversubscribed by callers.
func TestCreditTracking(t *testing.T) {
	eng := newStubEngine()
	eng.delay = 100 * time.Microsecond
	srv := startServer(t, netserve.Config{Engine: eng, Window: 4})
	cl := dial(t, srv, netclient.Options{Tenant: "t"})
	if cl.Window() != 4 {
		t.Fatalf("granted window %d, want 4", cl.Window())
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := cl.Write("f", int64(g*25+i)*4096, 4096, nil); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := srv.Stats(); st.Busy != 0 {
		t.Fatalf("cooperative client drew %d BUSY responses", st.Busy)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
