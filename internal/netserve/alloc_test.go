package netserve

import (
	"bufio"
	"bytes"
	"io"
	"testing"
)

// syncEngine completes every request synchronously — the server's request
// path must not care (the done guard and channel hand-off are the same),
// and it lets AllocsPerRun measure one full request without goroutine
// noise.
type syncEngine struct{}

func (syncEngine) Write(rank int, file string, off, size int64, data []byte, done func(error)) error {
	done(nil)
	return nil
}

func (syncEngine) Read(rank int, file string, off, size int64, buf []byte, done func(error)) error {
	for i := range buf {
		buf[i] = byte(i)
	}
	done(nil)
	return nil
}

// newAllocConn builds a connection wired to a synchronous engine, with the
// tenant handshake already replayed, ready to be driven frame by frame
// without sockets or goroutines.
func newAllocConn(t *testing.T, payload bool) *sconn {
	t.Helper()
	s := &Server{cfg: Config{Engine: syncEngine{}, Window: 32, Payload: payload}, conns: make(map[int]*sconn)}
	c := newSConn(s, 0, nil)

	hello := make([]byte, ReqHdrLen+2)
	PutReqHeader(hello, ReqHeader{Op: OpHello, NameLen: 2, Off: ProtoMagic, Size: ProtoVersion})
	copy(hello[ReqHdrLen:], "t0")
	br := bufio.NewReader(bytes.NewReader(hello))
	if r, fatal, err := c.readFrame(br); err != nil || fatal || r != nil {
		t.Fatalf("hello replay: r=%v fatal=%v err=%v", r, fatal, err)
	}
	resp := <-c.out
	c.writeResponse(resp, io.Discard)
	return c
}

// runFrame pushes one encoded request frame through the steady-state
// request path: decode → dispatch → (synchronous completion) → encode.
func runFrame(t *testing.T, c *sconn, src *bytes.Reader, br *bufio.Reader, frame []byte) {
	src.Reset(frame)
	br.Reset(src)
	r, fatal, err := c.readFrame(br)
	if err != nil || fatal || r == nil {
		t.Fatalf("readFrame: r=%v fatal=%v err=%v", r, fatal, err)
	}
	c.dispatch(r)
	resp := <-c.out
	if resp.status != StatusOK {
		t.Fatalf("status %s", StatusString(resp.status))
	}
	c.writeResponse(resp, io.Discard)
}

// TestServeRequestZeroAllocs pins the steady-state server request path —
// decode → dispatch → encode, including the tenant-name interning lookup,
// the window accounting and the pooled frame buffer — at zero heap
// allocations per request, in performance mode (no payload bytes) for
// both ops and in payload mode for reads (`make alloc-check`).
func TestServeRequestZeroAllocs(t *testing.T) {
	const size = 16 << 10

	mkWrite := func(payload bool) []byte {
		n := ReqHdrLen + 4
		flags := uint8(0)
		if payload {
			flags = FlagPayload
			n += size
		}
		f := make([]byte, n)
		PutReqHeader(f, ReqHeader{ID: 7, Op: OpWrite, Flags: flags, NameLen: 4, Off: 4096, Size: size})
		copy(f[ReqHdrLen:], "file")
		return f
	}
	mkRead := func() []byte {
		f := make([]byte, ReqHdrLen+4)
		PutReqHeader(f, ReqHeader{ID: 8, Op: OpRead, NameLen: 4, Off: 4096, Size: size})
		copy(f[ReqHdrLen:], "file")
		return f
	}

	cases := []struct {
		name    string
		payload bool
		frame   []byte
	}{
		{"perf-write", false, mkWrite(false)},
		{"perf-read", false, mkRead()},
		{"payload-write", true, mkWrite(true)},
		{"payload-read", true, mkRead()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newAllocConn(t, tc.payload)
			src := bytes.NewReader(nil)
			br := bufio.NewReaderSize(src, 64<<10)
			// Warm: intern the name, size the pooled buffer.
			runFrame(t, c, src, br, tc.frame)
			allocs := testing.AllocsPerRun(200, func() {
				runFrame(t, c, src, br, tc.frame)
			})
			if allocs != 0 {
				t.Fatalf("%s request path allocates %.2f/op, want 0", tc.name, allocs)
			}
		})
	}
}
