// Package netserve is the network serve frontend: a TCP listener speaking
// a length-prefixed little-endian binary protocol in front of the
// concurrent S4D engine (core.NewConcurrent over pfs.WallFS). It turns the
// in-process engine into an actual cache service — multi-tenant file
// namespacing, per-connection bounded in-flight windows with explicit
// backpressure (BUSY, never unbounded queuing), request pipelining with
// out-of-order completion matched by request id, and graceful drain on
// shutdown. The wire path is engineered as a hot path: pooled frame
// buffers, a single buffered read for header+payload, the decoded payload
// slice handed straight to the engine on writes and the engine's read
// bytes written straight from the response buffer — zero copies inside the
// server, and zero heap allocations per steady-state request (pinned by
// `make alloc-check`).
//
// # Frame format (DESIGN.md §15)
//
// Every frame is a fixed header followed by its payload; all integers are
// little-endian. Requests (client → server):
//
//	offset size field
//	0      8    id       request id, echoed in the response
//	8      1    op       1=HELLO 2=WRITE 3=READ
//	9      1    flags    bit0: payload bytes follow the name
//	10     2    nameLen  file-name length (HELLO: tenant-name length)
//	12     8    offset   file offset (HELLO: protocol magic)
//	20     8    size     request size  (HELLO: protocol version)
//
// followed by nameLen name bytes, then size payload bytes when flags bit0
// is set (functional-mode writes). Responses (server → client):
//
//	offset size field
//	0      8    id          echoed request id
//	8      1    status      0=OK 1=BUSY 2=DRAINING 3=BAD_REQUEST 4=IO_ERROR
//	9      1    flags       HELLO response: bit0 = payload mode
//	10     2    reserved
//	12     8    value       HELLO response: granted per-connection window
//	20     4    payloadLen  read payload bytes that follow
//
// The first frame on a connection must be HELLO carrying the tenant name;
// every subsequent file name is namespaced as "tenant|name" before it
// reaches the engine's DMT, so tenants cannot observe each other's files.
package netserve

import (
	"encoding/binary"
	"fmt"
)

// Frame geometry and limits.
const (
	ReqHdrLen  = 28
	RespHdrLen = 24

	// MaxNameLen bounds file and tenant names; MaxPayload bounds a single
	// request or response payload. A frame exceeding either is a protocol
	// error and closes the connection.
	MaxNameLen = 1 << 10
	MaxPayload = 8 << 20
)

// Request ops.
const (
	OpHello = 1
	OpWrite = 2
	OpRead  = 3
)

// Response status codes.
const (
	StatusOK         = 0
	StatusBusy       = 1
	StatusDraining   = 2
	StatusBadRequest = 3
	StatusIOError    = 4
)

// Header flag bits.
const (
	// FlagPayload marks a request whose name is followed by payload bytes
	// (requests), or a HELLO response granted payload mode (responses).
	FlagPayload = 1
)

// HELLO handshake constants, carried in the offset/size fields.
const (
	ProtoMagic   = 0x5334444e // "S4DN"
	ProtoVersion = 1
)

// ReqHeader is a decoded request header.
type ReqHeader struct {
	ID      uint64
	Op      uint8
	Flags   uint8
	NameLen uint16
	Off     int64
	Size    int64
}

// PutReqHeader encodes h into b[:ReqHdrLen].
func PutReqHeader(b []byte, h ReqHeader) {
	binary.LittleEndian.PutUint64(b[0:], h.ID)
	b[8] = h.Op
	b[9] = h.Flags
	binary.LittleEndian.PutUint16(b[10:], h.NameLen)
	binary.LittleEndian.PutUint64(b[12:], uint64(h.Off))
	binary.LittleEndian.PutUint64(b[20:], uint64(h.Size))
}

// ParseReqHeader decodes b[:ReqHdrLen].
func ParseReqHeader(b []byte) ReqHeader {
	return ReqHeader{
		ID:      binary.LittleEndian.Uint64(b[0:]),
		Op:      b[8],
		Flags:   b[9],
		NameLen: binary.LittleEndian.Uint16(b[10:]),
		Off:     int64(binary.LittleEndian.Uint64(b[12:])),
		Size:    int64(binary.LittleEndian.Uint64(b[20:])),
	}
}

// RespHeader is a decoded response header.
type RespHeader struct {
	ID         uint64
	Status     uint8
	Flags      uint8
	Value      int64
	PayloadLen uint32
}

// PutRespHeader encodes h into b[:RespHdrLen].
func PutRespHeader(b []byte, h RespHeader) {
	binary.LittleEndian.PutUint64(b[0:], h.ID)
	b[8] = h.Status
	b[9] = h.Flags
	binary.LittleEndian.PutUint16(b[10:], 0)
	binary.LittleEndian.PutUint64(b[12:], uint64(h.Value))
	binary.LittleEndian.PutUint32(b[20:], h.PayloadLen)
}

// ParseRespHeader decodes b[:RespHdrLen].
func ParseRespHeader(b []byte) RespHeader {
	return RespHeader{
		ID:         binary.LittleEndian.Uint64(b[0:]),
		Status:     b[8],
		Flags:      b[9],
		Value:      int64(binary.LittleEndian.Uint64(b[12:])),
		PayloadLen: binary.LittleEndian.Uint32(b[20:]),
	}
}

// StatusString names a response status for errors and logs.
func StatusString(s uint8) string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusBusy:
		return "BUSY"
	case StatusDraining:
		return "DRAINING"
	case StatusBadRequest:
		return "BAD_REQUEST"
	case StatusIOError:
		return "IO_ERROR"
	default:
		return fmt.Sprintf("status(%d)", s)
	}
}

// TenantName composes the engine-side file name of a tenant's file — the
// namespacing applied at the DMT boundary. Exported so tests and tools can
// inspect engine state for a given tenant view.
func TenantName(tenant, file string) string { return tenant + "|" + file }
