package cluster

import (
	"fmt"
	"net"
	"time"

	"s4dcache/internal/core"
	"s4dcache/internal/costmodel"
	"s4dcache/internal/device"
	"s4dcache/internal/kvstore"
	"s4dcache/internal/netmodel"
	"s4dcache/internal/netserve"
	"s4dcache/internal/pfs"
	"s4dcache/internal/sim"
)

// WallParams parameterizes a wall-clock deployment: the concurrent engine
// over WallFS backends, optionally fronted by a netserve listener. The
// zero value gives the standard small testbed (8+8 servers, 16 shards,
// 512MB cache, performance mode).
type WallParams struct {
	// Shards is the engine concurrency; 0 means 16.
	Shards int
	// CacheCapacity is the cache size; 0 means 512MB.
	CacheCapacity int64
	// PerOpSSD / PerOpHDD are the modeled per-subrequest service times of
	// the cache and original servers; 0 means 100µs / 200µs (small so the
	// network-layer tortures cycle fast).
	PerOpSSD, PerOpHDD time.Duration
	// PersistMeta keeps DMT durability on an in-memory backend so
	// RestartS4D can warm-restart. Implies a 20ms snapshot period.
	PersistMeta bool
	// Payload serves functional mode (payload bytes cross the wire).
	Payload bool
	// Window / MaxInFlight / WrapConn pass through to netserve.Config.
	Window      int
	MaxInFlight int
	WrapConn    func(c net.Conn, id int) net.Conn
}

func (p WallParams) withDefaults() WallParams {
	if p.Shards <= 0 {
		p.Shards = 16
	}
	if p.CacheCapacity <= 0 {
		p.CacheCapacity = 512 << 20
	}
	if p.PerOpSSD <= 0 {
		p.PerOpSSD = 100 * time.Microsecond
	}
	if p.PerOpHDD <= 0 {
		p.PerOpHDD = 200 * time.Microsecond
	}
	return p
}

// WallTestbed is a wall-clock deployment: concurrent engine, WallFS
// backends, and a netserve frontend. It mirrors Testbed for the
// goroutine-parallel stack; RestartS4D models an abrupt server-process
// crash (listener and engine die, in-flight requests fail at clients)
// followed by recovery on the same address.
type WallTestbed struct {
	Clock       *sim.WallClock
	OPFS, CPFS  *pfs.WallFS
	Model       costmodel.Params
	Eng         *core.Concurrent
	Server      *netserve.Server
	MetaBackend *kvstore.MemBackend

	params WallParams
	addr   string
}

// NewWallS4D builds the deployment and starts serving on a fresh loopback
// port (WallTestbed.Addr).
func NewWallS4D(p WallParams) (*WallTestbed, error) {
	p = p.withDefaults()
	tb := &WallTestbed{Clock: sim.NewWallClock(), params: p}
	mkWall := func(label string, perOp time.Duration) (*pfs.WallFS, error) {
		return pfs.NewWallFS(pfs.WallConfig{
			Label:       label,
			Layout:      pfs.Layout{Servers: 8, StripeSize: 16 << 10},
			Clock:       tb.Clock,
			Functional:  p.Payload,
			PerOp:       perOp,
			BytesPerSec: 1 << 33,
		})
	}
	var err error
	if tb.OPFS, err = mkWall("OPFS", p.PerOpHDD); err != nil {
		return nil, err
	}
	if tb.CPFS, err = mkWall("CPFS", p.PerOpSSD); err != nil {
		return nil, err
	}
	curve, err := device.ProfileSeekCurve(device.NewHDD(device.DefaultHDDParams()), device.DefaultProfileConfig())
	if err != nil {
		return nil, err
	}
	tb.Model = costmodel.Calibrate(device.DefaultHDDParams(), device.DefaultSSDParams(), netmodel.Gigabit(), curve)
	tb.Model.M = 8
	tb.Model.N = 8
	tb.Model.Stripe = 16 << 10
	if p.PersistMeta {
		tb.MetaBackend = kvstore.NewMemBackend()
	}
	if err := tb.buildEngine(false); err != nil {
		return nil, err
	}
	if err := tb.serve(""); err != nil {
		tb.Eng.Close()
		return nil, err
	}
	return tb, nil
}

// buildEngine constructs the concurrent engine, opening the durable meta
// store when PersistMeta is set.
func (tb *WallTestbed) buildEngine(warm bool) error {
	cfg := core.ConcurrentConfig{
		Clock:         tb.Clock,
		OPFS:          tb.OPFS,
		CPFS:          tb.CPFS,
		Model:         tb.Model,
		CacheCapacity: tb.params.CacheCapacity,
		Concurrency:   tb.params.Shards,
	}
	if tb.MetaBackend != nil {
		store, err := kvstore.Open(tb.MetaBackend, "dmt", kvstore.Options{})
		if err != nil {
			return fmt.Errorf("cluster: wall meta store: %w", err)
		}
		cfg.MetaStore = store
		cfg.SnapshotPeriod = 20 * time.Millisecond
		cfg.WarmRestart = warm
	}
	eng, err := core.NewConcurrent(cfg)
	if err != nil {
		return fmt.Errorf("cluster: wall engine: %w", err)
	}
	tb.Eng = eng
	return nil
}

// serve starts the netserve frontend; addr "" picks a fresh loopback port,
// otherwise it rebinds the given address (retrying briefly — the old
// listener's port may take a moment to free after a crash).
func (tb *WallTestbed) serve(addr string) error {
	cfg := netserve.Config{
		Engine:      tb.Eng,
		Addr:        addr,
		Window:      tb.params.Window,
		MaxInFlight: tb.params.MaxInFlight,
		Payload:     tb.params.Payload,
		WrapConn:    tb.params.WrapConn,
	}
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		var srv *netserve.Server
		if srv, err = netserve.Serve(cfg); err == nil {
			tb.Server = srv
			tb.addr = srv.Addr()
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("cluster: wall serve: %w", err)
}

// Addr is the frontend's listen address; stable across RestartS4D.
func (tb *WallTestbed) Addr() string { return tb.addr }

// WallRestartOptions configures RestartS4D.
type WallRestartOptions struct {
	// Warm recovers cache residency from the durable metadata (requires
	// PersistMeta); false restarts cold with an empty cache.
	Warm bool
}

// RestartS4D crash-restarts the serving process: the listener and engine
// are torn down abruptly — every connected client sees its in-flight
// pipeline fail — then the engine is rebuilt (warm or cold) and the
// frontend comes back on the same address. Connections do not survive;
// clients must Reconnect.
func (tb *WallTestbed) RestartS4D(opts WallRestartOptions) error {
	if opts.Warm && tb.MetaBackend == nil {
		return fmt.Errorf("cluster: wall restart: warm needs PersistMeta")
	}
	tb.Server.Close()
	tb.Eng.Close()
	if opts.Warm {
		if err := tb.buildEngine(true); err != nil {
			return err
		}
	} else {
		// Cold: fresh meta state; the old durable bytes stay on
		// MetaBackend for a later warm restart, mirroring Testbed.
		old := tb.MetaBackend
		if old != nil {
			tb.MetaBackend = kvstore.NewMemBackend()
		}
		err := tb.buildEngine(false)
		tb.MetaBackend = old
		if err != nil {
			return err
		}
	}
	return tb.serve(tb.addr)
}

// Close tears the deployment down.
func (tb *WallTestbed) Close() {
	tb.Server.Close()
	tb.Eng.Close()
}
