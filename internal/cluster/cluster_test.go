package cluster

import (
	"testing"
	"time"

	"s4dcache/internal/core"
	"s4dcache/internal/workload"
)

func TestStockTestbedShape(t *testing.T) {
	tb, err := NewStock(Default())
	if err != nil {
		t.Fatal(err)
	}
	if tb.OPFS == nil || tb.CPFS != nil || tb.S4D != nil {
		t.Fatal("stock testbed has wrong components")
	}
	if len(tb.OPFS.Servers()) != 8 {
		t.Fatalf("DServers = %d, want 8", len(tb.OPFS.Servers()))
	}
	comm, err := tb.Comm(4)
	if err != nil {
		t.Fatal(err)
	}
	if comm.Size() != 4 {
		t.Fatal("comm size wrong")
	}
	tb.Close() // no-op on stock
}

func TestS4DTestbedShape(t *testing.T) {
	p := Default()
	p.Trace = true
	p.PersistMeta = true
	p.ChargeMetaIO = true
	tb, err := NewS4D(p)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if tb.S4D == nil || tb.CPFS == nil || tb.Recorder == nil {
		t.Fatal("S4D testbed missing components")
	}
	if len(tb.CPFS.Servers()) != 4 {
		t.Fatalf("CServers = %d, want 4", len(tb.CPFS.Servers()))
	}
	if tb.Model.M != 8 || tb.Model.N != 4 {
		t.Fatalf("model M/N = %d/%d", tb.Model.M, tb.Model.N)
	}
	if err := tb.Model.Validate(); err != nil {
		t.Fatalf("calibrated model invalid: %v", err)
	}
}

func TestValidationErrors(t *testing.T) {
	p := Default()
	p.DServers = 0
	if _, err := NewStock(p); err == nil {
		t.Fatal("zero DServers accepted")
	}
	p = Default()
	p.CServers = 0
	if _, err := NewS4D(p); err == nil {
		t.Fatal("zero CServers accepted")
	}
	if _, err := NewStock(Default()); err != nil {
		t.Fatal(err)
	}
}

// TestTestbedCloseIdempotent pins the teardown contract: Close stops the
// Rebuilder ticker so Engine.Run terminates, and closing again (defer
// plus explicit call is a common pattern in the experiment runners) is a
// no-op rather than a double-stop.
func TestTestbedCloseIdempotent(t *testing.T) {
	p := Default()
	p.RebuildPeriod = time.Millisecond
	tb, err := NewS4D(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		tb.Close()
	}
	// With the ticker stopped the event queue must drain: Run returning
	// is the assertion (a live ticker would re-arm forever and hang the
	// test). The tick already scheduled before Close may still fire once,
	// but nothing past it.
	tb.Eng.Run()
	if got := tb.Eng.Now(); got > p.RebuildPeriod {
		t.Fatalf("ticker re-armed after Close: engine advanced to %v", got)
	}
}

// TestS4DBeatsStockOnMixedIOR is the headline integration check: the
// paper's mixed IOR scenario with 16KB requests must run significantly
// faster under S4D-Cache than on the stock I/O system (Fig. 6 reports
// ~49% at 16KB), and the request distribution must favor the CServers
// for small requests (Table III).
func TestS4DBeatsStockOnMixedIOR(t *testing.T) {
	const ranks = 4
	cfg := workload.PaperMixedIOR(ranks, 16<<10, 0.004) // ~8MB per instance
	run := func(s4d bool) (mbps float64, tb *Testbed) {
		p := Default()
		p.CacheCapacity = cfg.DataSize() / 5 // 20% of data size (§V.A)
		var err error
		if s4d {
			tb, err = NewS4D(p)
		} else {
			tb, err = NewStock(p)
		}
		if err != nil {
			t.Fatal(err)
		}
		comm, err := tb.Comm(ranks)
		if err != nil {
			t.Fatal(err)
		}
		var res workload.Result
		finished := false
		if err := workload.RunMixed(comm, cfg, true, func(r workload.Result) { res = r; finished = true }); err != nil {
			t.Fatal(err)
		}
		tb.Eng.RunWhile(func() bool { return !finished })
		tb.Close()
		return res.ThroughputMBps(), tb
	}
	stock, _ := run(false)
	s4d, tbS4D := run(true)
	if stock <= 0 || s4d <= 0 {
		t.Fatalf("throughputs: stock=%.1f s4d=%.1f", stock, s4d)
	}
	speedup := s4d / stock
	if speedup < 1.15 {
		t.Fatalf("S4D speedup = %.2fx (stock %.1f MB/s, s4d %.1f MB/s); want >= 1.15x", speedup, stock, s4d)
	}
	st := tbS4D.S4D.Stats()
	if st.Admissions == 0 {
		t.Fatal("no cache admissions in mixed workload")
	}
	// Random instances should be absorbed: cache share well above the
	// random fraction alone would suggest if nothing were cached.
	if share := st.CacheWriteShare(); share < 0.2 {
		t.Fatalf("cache write share = %.2f, want >= 0.2", share)
	}
}

// TestOverheadWhenNothingCaches is the Fig. 11 check: with the admission
// policy disabled (every request misses and goes to the DServers), the
// S4D machinery must add almost no cost relative to stock.
func TestOverheadWhenNothingCaches(t *testing.T) {
	const ranks = 4
	iorCfg := workload.IORConfig{
		Ranks: ranks, FileSize: 16 << 20, RequestSize: 16 << 10,
		Random: true, Seed: 3,
	}
	run := func(s4d bool) float64 {
		p := Default()
		p.CacheCapacity = 8 << 20
		p.Policy = core.PolicyNone
		p.PersistMeta = true
		p.ChargeMetaIO = true
		var tb *Testbed
		var err error
		if s4d {
			tb, err = NewS4D(p)
		} else {
			tb, err = NewStock(p)
		}
		if err != nil {
			t.Fatal(err)
		}
		comm, err := tb.Comm(ranks)
		if err != nil {
			t.Fatal(err)
		}
		var res workload.Result
		finished := false
		if err := workload.RunIOR(comm, iorCfg, true, func(r workload.Result) { res = r; finished = true }); err != nil {
			t.Fatal(err)
		}
		tb.Eng.RunWhile(func() bool { return !finished })
		tb.Close()
		return res.ThroughputMBps()
	}
	stock := run(false)
	s4dOff := run(true)
	overhead := (stock - s4dOff) / stock
	if overhead > 0.05 {
		t.Fatalf("all-miss overhead = %.1f%% (stock %.1f vs s4d %.1f MB/s), want <= 5%%",
			overhead*100, stock, s4dOff)
	}
}

// TestReadSecondRunSpeedup checks the paper's read protocol (§V.A): the
// first run populates the cache via lazy fetches; the second run's reads
// are then served by the CServers and run faster.
func TestReadSecondRunSpeedup(t *testing.T) {
	const ranks = 4
	cfg := workload.IORConfig{
		Ranks: ranks, FileSize: 8 << 20, RequestSize: 16 << 10,
		Random: true, Seed: 9,
	}
	p := Default()
	p.CacheCapacity = 16 << 20
	tb, err := NewS4D(p)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	comm, err := tb.Comm(ranks)
	if err != nil {
		t.Fatal(err)
	}
	// Seed the file on the DServers via a stock-path write (sequential).
	seed := workload.IORConfig{Ranks: ranks, FileSize: 8 << 20, RequestSize: 1 << 20}
	seeded := false
	if err := workload.RunIOR(comm, seed, true, func(workload.Result) { seeded = true }); err != nil {
		t.Fatal(err)
	}
	tb.Eng.RunWhile(func() bool { return !seeded })

	var first workload.Result
	firstDone := false
	if err := workload.RunIOR(comm, cfg, false, func(r workload.Result) { first = r; firstDone = true }); err != nil {
		t.Fatal(err)
	}
	tb.Eng.RunWhile(func() bool { return !firstDone })
	// Let the Rebuilder finish all lazy fetches.
	drained := false
	tb.S4D.DrainRebuild(func() { drained = true })
	tb.Eng.RunWhile(func() bool { return !drained })

	var second workload.Result
	secondDone := false
	if err := workload.RunIOR(comm, cfg, false, func(r workload.Result) { second = r; secondDone = true }); err != nil {
		t.Fatal(err)
	}
	tb.Eng.RunWhile(func() bool { return !secondDone })

	if tb.S4D.Stats().Fetches == 0 {
		t.Fatal("no lazy fetches happened")
	}
	speedup := second.ThroughputMBps() / first.ThroughputMBps()
	if speedup < 1.5 {
		t.Fatalf("second-run read speedup = %.2fx (%.1f → %.1f MB/s), want >= 1.5x",
			speedup, first.ThroughputMBps(), second.ThroughputMBps())
	}
}
