package cluster

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"s4dcache/internal/netclient"
	"s4dcache/internal/netserve"
)

// Network-layer crash/drain tortures over the wall-clock testbed: the
// failure semantics a remote client is promised — typed errors when the
// server process dies mid-pipeline, session re-handshake on reconnect,
// graceful drain letting in-flight work finish. These run under -race in
// CI (×3).

func dialWall(t *testing.T, tb *WallTestbed, tenant string) *netclient.Client {
	t.Helper()
	cl, err := netclient.Dial(tb.Addr(), netclient.Options{Tenant: tenant})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	return cl
}

// reconnectWall retries Reconnect while the server side is still coming
// back up after a restart.
func reconnectWall(t *testing.T, cl *netclient.Client) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := cl.Reconnect()
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("reconnect: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWallRestartMidPipeline: a server crash-restart with a pipeline in
// flight surfaces typed ErrConnClosed on the affected calls (never a hang,
// never a silent success), the reconnected session re-handshakes its
// tenant namespace, and data written before the crash is served after a
// warm restart.
func TestWallRestartMidPipeline(t *testing.T) {
	tb, err := NewWallS4D(WallParams{PersistMeta: true, Payload: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	cl := dialWall(t, tb, "alpha")
	defer cl.Close()

	const reqSize = 16 << 10
	payload := bytes.Repeat([]byte{0xa5}, reqSize)
	// Durable prelude: data the warm restart must still serve.
	for i := 0; i < 4; i++ {
		if err := cl.Write("pre", int64(i)*reqSize, reqSize, payload); err != nil {
			t.Fatalf("prelude write %d: %v", i, err)
		}
	}

	// Pipeline a stream of writes while the server crash-restarts.
	var calls []*netclient.Call
	stop := make(chan struct{})
	var issued atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			calls = append(calls, cl.Go(netserve.OpWrite, "stream", int64(i%64)*reqSize, reqSize, payload, nil))
			issued.Add(1)
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Let the pipeline get going, then pull the rug.
	for issued.Load() < 16 {
		time.Sleep(time.Millisecond)
	}
	if err := tb.RestartS4D(WallRestartOptions{Warm: true}); err != nil {
		t.Fatalf("restart: %v", err)
	}
	for issued.Load() < 32 { // keep issuing into the dead conn
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	okOps, failedOps := 0, 0
	for _, call := range calls {
		<-call.Done
		switch {
		case call.Err == nil:
			okOps++
		case errors.Is(call.Err, netclient.ErrConnClosed):
			failedOps++
		default:
			t.Fatalf("unexpected pipeline error: %v", call.Err)
		}
	}
	if okOps == 0 {
		t.Fatal("no pipelined op completed before the crash")
	}
	if failedOps == 0 {
		t.Fatal("crash failed no pipelined op — restart happened outside the pipeline window")
	}
	if !cl.Lost() {
		t.Fatal("client should have observed the lost connection")
	}

	// Reconnect re-handshakes the tenant; the prelude data survives the
	// warm restart byte-for-byte.
	reconnectWall(t, cl)
	buf := make([]byte, reqSize)
	for i := 0; i < 4; i++ {
		if err := cl.Read("pre", int64(i)*reqSize, reqSize, buf); err != nil {
			t.Fatalf("post-restart read %d: %v", i, err)
		}
		if !bytes.Equal(buf, payload) {
			t.Fatalf("post-restart read %d returned wrong bytes", i)
		}
	}
	t.Logf("pipeline: %d ok, %d failed typed", okOps, failedOps)
}

// TestWallRestartColdIsolation: after a cold restart the cache is empty
// but the PFS data survives; a second tenant dialing the restarted server
// cannot see the first tenant's files.
func TestWallRestartColdIsolation(t *testing.T) {
	tb, err := NewWallS4D(WallParams{PersistMeta: true, Payload: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	cl := dialWall(t, tb, "alpha")
	defer cl.Close()

	const reqSize = 4 << 10
	payload := bytes.Repeat([]byte{0x5a}, reqSize)
	if err := cl.Write("secret", 0, reqSize, payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := tb.RestartS4D(WallRestartOptions{}); err != nil {
		t.Fatalf("cold restart: %v", err)
	}
	reconnectWall(t, cl)
	buf := make([]byte, reqSize)
	if err := cl.Read("secret", 0, reqSize, buf); err != nil {
		t.Fatalf("post-restart read: %v", err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("cold restart lost PFS data")
	}

	other := dialWall(t, tb, "beta")
	defer other.Close()
	if err := other.Read("secret", 0, reqSize, buf); err != nil {
		t.Fatalf("cross-tenant read: %v", err)
	}
	if bytes.Equal(buf, payload) {
		t.Fatal("tenant beta read tenant alpha's bytes")
	}
}

// TestWallDrainUnderLoad: graceful drain lets every accepted request
// complete while rejecting new work with typed ErrDraining.
func TestWallDrainUnderLoad(t *testing.T) {
	tb, err := NewWallS4D(WallParams{})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	const clients = 4
	var wg sync.WaitGroup
	var okOps, drained atomic.Int64
	stop := make(chan struct{})
	for c := 0; c < clients; c++ {
		cl := dialWall(t, tb, "load")
		defer cl.Close()
		wg.Add(1)
		go func(cl *netclient.Client, c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				err := cl.Write("f", int64(i%256)<<14, 16<<10, nil)
				switch {
				case err == nil:
					okOps.Add(1)
				case errors.Is(err, netclient.ErrDraining):
					drained.Add(1)
					return
				case errors.Is(err, netclient.ErrConnClosed):
					return // conn torn down post-drain
				default:
					panic(err)
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}(cl, c)
	}

	for okOps.Load() < 64 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := tb.Server.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	close(stop)
	wg.Wait()

	if drained.Load() == 0 {
		t.Log("no client observed DRAINING (all were between ops); drain still completed clean")
	}
	stats := tb.Server.Stats()
	if stats.IOErrors != 0 || stats.BadRequests != 0 {
		t.Fatalf("drain caused errors: %+v", stats)
	}
	if _, err := netclient.Dial(tb.Addr(), netclient.Options{Tenant: "late"}); err == nil {
		t.Fatal("dial succeeded after drain closed the listener")
	}
}
