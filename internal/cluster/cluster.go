// Package cluster assembles complete testbeds: the paper's 65-node SUN
// Fire configuration (§V.A) — 8 HDD DServers and 4 SSD CServers on Gigabit
// Ethernet, PVFS2-style striping, MPI ranks — in either stock or
// S4D-Cache form. Benchmarks, examples and the public API all build their
// deployments through this package.
package cluster

import (
	"fmt"
	"time"

	"s4dcache/internal/chunkstore"
	"s4dcache/internal/core"
	"s4dcache/internal/costmodel"
	"s4dcache/internal/device"
	"s4dcache/internal/faults"
	"s4dcache/internal/iotrace"
	"s4dcache/internal/kvstore"
	"s4dcache/internal/memcache"
	"s4dcache/internal/mpiio"
	"s4dcache/internal/netmodel"
	"s4dcache/internal/pfs"
	"s4dcache/internal/sim"
)

// Params describes the hardware and software configuration of a testbed.
type Params struct {
	// DServers is the number of HDD file servers (paper: 8).
	DServers int
	// CServers is the number of SSD file servers (paper: 4).
	CServers int
	// Stripe is the PFS stripe size (PVFS2 default: 64 KB).
	Stripe int64
	// HDD configures every DServer's disk.
	HDD device.HDDParams
	// SSD configures every CServer's flash device.
	SSD device.SSDParams
	// Net is the interconnect (paper: Gigabit Ethernet).
	Net netmodel.Params
	// Functional selects payload-carrying stores (tests, examples) over
	// metadata-only stores (large performance runs).
	Functional bool
	// CacheCapacity is the S4D cache size in bytes (paper: 20% of the
	// application data size).
	CacheCapacity int64
	// RebuildPeriod is the Rebuilder trigger period; 0 disables it.
	RebuildPeriod time.Duration
	// RebuildBatch caps per-cycle reorganization work; 0 = default.
	RebuildBatch int
	// Policy is the admission policy (zero = the paper's selective one).
	Policy core.AdmissionPolicy
	// EagerFetch disables the paper's lazy read caching (ablation).
	EagerFetch bool
	// CachePolicy selects the cache-space eviction/admission policy by
	// name (cachespace.PolicyNames); empty means clean-LRU.
	CachePolicy string
	// AdaptivePeriod enables the online workload characterizer, which
	// swaps the cache policy and retunes the criticality threshold
	// every period; 0 keeps the configured policy fixed.
	AdaptivePeriod time.Duration
	// PersistMeta persists the DMT in an embedded store.
	PersistMeta bool
	// SnapshotPeriod streams a durable residency snapshot every period
	// (DESIGN.md §14); 0 disables it. Needs PersistMeta.
	SnapshotPeriod time.Duration
	// ChargeMetaIO charges DMT commits as CServer I/O (needs PersistMeta).
	ChargeMetaIO bool
	// MetaBudget bounds the DMT's resident metadata bytes (DESIGN.md §16):
	// over budget, cold clean files spill to sealed store records and fault
	// back in on demand. 0 means unbounded. Needs PersistMeta.
	MetaBudget int64
	// Trace installs an iotrace.Recorder on both file systems.
	Trace bool
	// PaperTableII switches the cost model to the verbatim Table II
	// formulas (ablation).
	PaperTableII bool
	// MemCacheBytes layers a client-side memory cache of this capacity
	// over the transport — the paper's stated future work (§II.B). 0
	// disables it.
	MemCacheBytes int64
	// MemCachePageBytes is the memory-cache page granularity; the zero
	// value means 16 KB (pages must be no larger than the requests they
	// should capture).
	MemCachePageBytes int64
	// FaultPlan injects deterministic failures (see internal/faults). The
	// zero value disables injection entirely — no fault state is built and
	// the testbed behaves bit-for-bit like a fault-free one.
	FaultPlan faults.Plan
	// FaultSeed derives the per-server random streams of FaultPlan.
	FaultSeed int64
}

// Default returns the paper's testbed configuration.
func Default() Params {
	return Params{
		DServers:      8,
		CServers:      4,
		Stripe:        64 << 10,
		HDD:           device.DefaultHDDParams(),
		SSD:           device.DefaultSSDParams(),
		Net:           netmodel.Gigabit(),
		CacheCapacity: 2 << 30, // overridden per experiment (20% of data)
		RebuildPeriod: 250 * time.Millisecond,
	}
}

// Testbed is an assembled deployment.
type Testbed struct {
	// Eng is the shared virtual clock.
	Eng *sim.Engine
	// OPFS and CPFS are the two file systems; CPFS is nil in stock mode.
	OPFS, CPFS *pfs.FS
	// S4D is the cache instance; nil in stock mode.
	S4D *core.S4D
	// Recorder is non-nil when Params.Trace is set.
	Recorder *iotrace.Recorder
	// MemCache is non-nil after Comm() when Params.MemCacheBytes is set.
	MemCache *memcache.Cache
	// Model is the calibrated cost model (valid in S4D mode).
	Model costmodel.Params
	// MetaBackend holds the metadata store's persisted bytes when
	// Params.PersistMeta is set — the durable state RestartS4D reopens.
	MetaBackend kvstore.Backend
	// Params echoes the configuration.
	Params Params

	closed bool
}

// NewStock builds the baseline testbed: DServers only, no cache.
func NewStock(p Params) (*Testbed, error) {
	tb, err := build(p, false)
	if err != nil {
		return nil, fmt.Errorf("cluster: stock testbed: %w", err)
	}
	return tb, nil
}

// NewS4D builds the full S4D-Cache testbed.
func NewS4D(p Params) (*Testbed, error) {
	tb, err := build(p, true)
	if err != nil {
		return nil, fmt.Errorf("cluster: s4d testbed: %w", err)
	}
	return tb, nil
}

// Comm returns an MPI communicator of the given size over this testbed:
// through S4D when present, otherwise straight to the OPFS, with an
// optional memory-cache layer on top.
func (tb *Testbed) Comm(ranks int) (*mpiio.Comm, error) {
	var transport mpiio.Transport
	if tb.S4D != nil {
		transport = tb.S4D
	} else {
		transport = mpiio.StockTransport{FS: tb.OPFS}
	}
	if tb.Params.MemCacheBytes > 0 {
		page := tb.Params.MemCachePageBytes
		if page <= 0 {
			page = 16 << 10
		}
		mc, err := memcache.New(memcache.Config{
			Engine:        tb.Eng,
			Below:         transport,
			CapacityBytes: tb.Params.MemCacheBytes,
			PageSize:      page,
		})
		if err != nil {
			return nil, err
		}
		tb.MemCache = mc
		transport = mc
	}
	return mpiio.NewComm(tb.Eng, ranks, transport)
}

// Close stops background activity (the Rebuilder ticker), letting
// Engine.Run terminate. Closing an already-closed testbed is a no-op.
func (tb *Testbed) Close() {
	if tb.closed {
		return
	}
	tb.closed = true
	if tb.S4D != nil {
		tb.S4D.Close()
	}
}

func build(p Params, withCache bool) (*Testbed, error) {
	if p.DServers <= 0 {
		return nil, fmt.Errorf("need at least one DServer, got %d", p.DServers)
	}
	if withCache && p.CServers <= 0 {
		return nil, fmt.Errorf("need at least one CServer, got %d", p.CServers)
	}
	eng := sim.NewEngine()
	tb := &Testbed{Eng: eng, Params: p}

	newStore := func(int) chunkstore.Store { return chunkstore.NewNull() }
	if p.Functional {
		newStore = func(int) chunkstore.Store { return chunkstore.NewSparse() }
	}
	var trace pfs.TraceFunc
	if p.Trace {
		tb.Recorder = iotrace.NewRecorder()
		trace = tb.Recorder.Hook()
	}
	var injector *faults.Injector
	if !p.FaultPlan.Empty() {
		injector = faults.NewInjector(p.FaultPlan, p.FaultSeed)
	}

	opfs, err := pfs.New(pfs.Config{
		Label:  "OPFS",
		Layout: pfs.Layout{Servers: p.DServers, StripeSize: p.Stripe},
		Engine: eng,
		NewDevice: func(i int) device.Device {
			hp := p.HDD
			hp.Seed = int64(i + 1)
			return device.NewHDD(hp)
		},
		NewStore: newStore,
		Net:      p.Net,
		Trace:    trace,
		Faults:   injector,
	})
	if err != nil {
		return nil, err
	}
	tb.OPFS = opfs
	if !withCache {
		return tb, nil
	}

	cpfs, err := pfs.New(pfs.Config{
		Label:  "CPFS",
		Layout: pfs.Layout{Servers: p.CServers, StripeSize: p.Stripe},
		Engine: eng,
		NewDevice: func(i int) device.Device {
			return device.NewSSD(p.SSD)
		},
		NewStore: newStore,
		Net:      p.Net,
		Trace:    trace,
		Faults:   injector,
	})
	if err != nil {
		return nil, err
	}
	tb.CPFS = cpfs

	// Offline profiling of the HDD model, as the paper profiles its disks.
	curve, err := device.ProfileSeekCurve(device.NewHDD(p.HDD), device.DefaultProfileConfig())
	if err != nil {
		return nil, err
	}
	model := costmodel.Calibrate(p.HDD, p.SSD, p.Net, curve)
	model.M = p.DServers
	model.N = p.CServers
	model.Stripe = p.Stripe
	model.PaperTableII = p.PaperTableII
	tb.Model = model

	var metaStore *kvstore.Store
	if p.PersistMeta {
		tb.MetaBackend = kvstore.NewMemBackend()
		metaStore, err = kvstore.Open(tb.MetaBackend, "dmt", kvstore.Options{})
		if err != nil {
			return nil, err
		}
	}
	s4d, err := core.New(core.Config{
		Engine:         eng,
		OPFS:           opfs,
		CPFS:           cpfs,
		Model:          model,
		CacheCapacity:  p.CacheCapacity,
		RebuildPeriod:  p.RebuildPeriod,
		RebuildBatch:   p.RebuildBatch,
		MetaStore:      metaStore,
		SnapshotPeriod: p.SnapshotPeriod,
		ChargeMetaIO:   p.ChargeMetaIO,
		MetaBudget:     p.MetaBudget,
		Policy:         p.Policy,
		LazyFetch:      !p.EagerFetch,
		CachePolicy:    p.CachePolicy,
		AdaptivePeriod: p.AdaptivePeriod,
	})
	if err != nil {
		return nil, err
	}
	tb.S4D = s4d
	if injector != nil {
		// CServer crash/restart events drive the S4D's degraded-mode
		// transitions (mapping invalidation, failover, deferred reads).
		cpfs.SetStateHook(s4d.OnCServerState)
	}
	return tb, nil
}

// RestartOptions configures a simulated crash/restart of the S4D layer.
type RestartOptions struct {
	// Warm re-opens the persisted metadata and recovers the cache image
	// (DESIGN.md §14). False models losing the metadata entirely: the
	// restarted instance comes up with a cold cache.
	Warm bool
	// CorruptPlan damages the persisted metadata bytes as they are read
	// back (corrupt: clauses, see internal/faults); the zero plan reads
	// them back intact. CorruptSeed derives the damage streams.
	CorruptPlan faults.Plan
	CorruptSeed int64
}

// RestartS4D simulates an S4D crash and restart: the running instance is
// abandoned (its background activity stopped), and a fresh one is built
// over the same engine, file systems and calibrated model. DServer and
// CServer payloads survive — only the S4D process dies. Requires an S4D
// testbed with PersistMeta.
func (tb *Testbed) RestartS4D(opts RestartOptions) error {
	if tb.S4D == nil {
		return fmt.Errorf("cluster: restart: not an S4D testbed")
	}
	if tb.MetaBackend == nil {
		return fmt.Errorf("cluster: restart: needs PersistMeta")
	}
	tb.S4D.Close()
	var store *kvstore.Store
	var err error
	var spillRead func(string, []byte) []byte
	if opts.Warm {
		backend := tb.MetaBackend
		// Plan.Empty deliberately ignores corrupt rules (they are not
		// serve-path faults), so check them directly here.
		if len(opts.CorruptPlan.Corrupt) > 0 || !opts.CorruptPlan.Empty() {
			inj := faults.NewInjector(opts.CorruptPlan, opts.CorruptSeed)
			backend = inj.WrapBackend(backend, "dmt")
			// corrupt:dmt.spill rules damage spilled metadata as it faults
			// back in, rather than the backend files.
			spillRead = inj.SpillRead("dmt")
		}
		store, err = kvstore.Open(backend, "dmt", kvstore.Options{})
	} else {
		// Cold: a fresh, empty store. The old durable state stays on
		// MetaBackend untouched (a later warm restart could still use it).
		store, err = kvstore.Open(kvstore.NewMemBackend(), "dmt", kvstore.Options{})
	}
	if err != nil {
		return fmt.Errorf("cluster: restart: %w", err)
	}
	p := tb.Params
	s4d, err := core.New(core.Config{
		Engine:         tb.Eng,
		OPFS:           tb.OPFS,
		CPFS:           tb.CPFS,
		Model:          tb.Model,
		CacheCapacity:  p.CacheCapacity,
		RebuildPeriod:  p.RebuildPeriod,
		RebuildBatch:   p.RebuildBatch,
		MetaStore:      store,
		SnapshotPeriod: p.SnapshotPeriod,
		ChargeMetaIO:   p.ChargeMetaIO,
		MetaBudget:     p.MetaBudget,
		SpillRead:      spillRead,
		Policy:         p.Policy,
		LazyFetch:      !p.EagerFetch,
		CachePolicy:    p.CachePolicy,
		AdaptivePeriod: p.AdaptivePeriod,
		WarmRestart:    opts.Warm,
	})
	if err != nil {
		return fmt.Errorf("cluster: restart: %w", err)
	}
	tb.S4D = s4d
	tb.closed = false
	return nil
}
