package cluster

import (
	"math/rand"
	"testing"
	"time"

	"s4dcache/internal/costmodel"
	"s4dcache/internal/sim"
)

// TestCostModelPredictsSimulatedHardware validates the relationship the
// paper relies on: the analytic cost model (calibrated by offline
// profiling) must predict the behaviour of the actual storage system well
// enough to rank requests. We issue single requests on an otherwise idle
// testbed and compare the measured completion time against the model's
// T_D prediction.
func TestCostModelPredictsSimulatedHardware(t *testing.T) {
	p := Default()
	tb, err := NewS4D(p)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	model := tb.Model

	type probe struct {
		size, dist int64
	}
	probes := []probe{
		{16 << 10, 0},
		{16 << 10, 1 << 30},
		{64 << 10, 512 << 20},
		{1 << 20, 0},
		{1 << 20, 2 << 30},
		{4 << 20, 1 << 30},
	}
	// Warm the file layout and head positions deterministically.
	rng := rand.New(rand.NewSource(5))
	var cursor int64
	for i, pr := range probes {
		// Establish the head position: access at `cursor`, then probe at
		// cursor+dist (same definition of distance the model uses).
		pre := cursor
		target := pre + pr.dist
		done := false
		if err := tb.OPFS.Write("probe", pre, 4096, sim.PriorityHigh, nil, func(error) { done = true }); err != nil {
			t.Fatal(err)
		}
		tb.Eng.RunWhile(func() bool { return !done })

		start := tb.Eng.Now()
		done = false
		if err := tb.OPFS.Write("probe", target, pr.size, sim.PriorityHigh, nil, func(error) { done = true }); err != nil {
			t.Fatal(err)
		}
		tb.Eng.RunWhile(func() bool { return !done })
		measured := tb.Eng.Now() - start

		predicted := model.HDDCost(costmodel.Request{
			Offset: target, Size: pr.size, Distance: pr.dist - 4096,
		})
		ratio := float64(predicted) / float64(measured)
		// The model is an expectation over rotational positions and an
		// approximation of queueing-free service; a 3x band is the
		// "good enough to rank" requirement.
		if ratio < 0.33 || ratio > 3.0 {
			t.Errorf("probe %d (size=%d dist=%d): predicted %v vs measured %v (ratio %.2f)",
				i, pr.size, pr.dist, predicted, measured, ratio)
		}
		cursor = target + pr.size + rng.Int63n(1<<20)
	}
}

// TestCostModelRanksRequestsLikeHardware is the weaker but more important
// property: across a spread of request shapes, the model's benefit
// ordering must broadly agree with the measured HDD-vs-SSD time
// difference, since admission only needs the *sign and ranking* of B.
func TestCostModelRanksRequestsLikeHardware(t *testing.T) {
	type shape struct {
		name  string
		size  int64
		dist  int64
		wantB bool // expected sign of the benefit per the paper
	}
	shapes := []shape{
		{"small-random", 16 << 10, 2 << 30, true},
		{"small-seq", 16 << 10, 0, false},
		{"mid-random", 256 << 10, 2 << 30, true},
		{"large-seq", 4 << 20, 0, false},
		{"large-random", 4 << 20, 8 << 30, false},
	}
	tb, err := NewS4D(Default())
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	for _, s := range shapes {
		b := tb.Model.Benefit(costmodel.Request{Offset: 16 << 30, Size: s.size, Distance: s.dist})
		if (b > 0) != s.wantB {
			t.Errorf("%s: benefit %v, want positive=%v", s.name, b, s.wantB)
		}
	}
	// And the measured system agrees on the headline pair: a small random
	// request is served much faster by the CServers than the DServers.
	measure := func(useCache bool) time.Duration {
		var fsWrite func(off int64, done func(error)) error
		if useCache {
			fsWrite = func(off int64, done func(error)) error {
				return tb.CPFS.Write("x", off, 16<<10, sim.PriorityHigh, nil, done)
			}
		} else {
			fsWrite = func(off int64, done func(error)) error {
				return tb.OPFS.Write("x", off, 16<<10, sim.PriorityHigh, nil, done)
			}
		}
		start := tb.Eng.Now()
		rng := rand.New(rand.NewSource(8))
		var run func(i int)
		finished := false
		run = func(i int) {
			if i == 50 {
				finished = true
				return
			}
			if err := fsWrite(rng.Int63n(4<<30), func(error) { run(i + 1) }); err != nil {
				t.Error(err)
				finished = true
			}
		}
		run(0)
		tb.Eng.RunWhile(func() bool { return !finished })
		return tb.Eng.Now() - start
	}
	hdd := measure(false)
	ssd := measure(true)
	if hdd < 5*ssd {
		t.Fatalf("measured small-random gap too small: HDD %v vs SSD %v", hdd, ssd)
	}
}
