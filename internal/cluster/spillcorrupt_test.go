package cluster

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"s4dcache/internal/faults"
)

// TestCorruptSpillQuarantineThenMiss drives the corrupt:dmt.spill clause
// end to end: a budgeted S4D spills clean file metadata to its store,
// the restart damages every spill record as it faults back in, and the
// system must quarantine the records and serve the reads as misses from
// the DServers — correct bytes always, never mappings decoded from rot.
func TestCorruptSpillQuarantineThenMiss(t *testing.T) {
	const (
		nFiles  = 24
		extLen  = int64(4 << 10)
		ranks   = 2
		perFile = 2
	)
	params := Default()
	// The test drains the Rebuilder explicitly; a periodic ticker would
	// keep Engine.Run from ever draining.
	params.RebuildPeriod = 0
	params.Functional = true
	params.PersistMeta = true
	params.MetaBudget = 256 // far below nFiles' metadata footprint
	params.CacheCapacity = int64(nFiles*perFile) * extLen * 2
	tb, err := NewS4D(params)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	name := func(i int) string { return fmt.Sprintf("/spill/f%03d", i) }
	payload := func(i, e int) []byte {
		b := make([]byte, extLen)
		for j := range b {
			b[j] = byte(i*31 + e*7 + j)
		}
		return b
	}
	// Random distinct per-file offsets: small scattered writes are what
	// the Data Identifier marks critical (and thus absorbs into the
	// cache); sequential extents would stream to the DServers uncached.
	rng := rand.New(rand.NewSource(3))
	offs := make([][]int64, nFiles)
	for i := range offs {
		perm := rng.Perm(64)
		offs[i] = make([]int64, perFile)
		for e := range offs[i] {
			offs[i][e] = int64(perm[e]) * extLen
		}
	}
	for i := 0; i < nFiles; i++ {
		for e := 0; e < perFile; e++ {
			if err := tb.S4D.Write(i%ranks, name(i), offs[i][e], extLen, payload(i, e), nil); err != nil {
				t.Fatal(err)
			}
			tb.Eng.Run()
		}
	}
	// Drain the Rebuilder: residency goes clean (flushed to the DServers),
	// which is what makes the files spill-eligible.
	drained := false
	tb.S4D.DrainRebuild(func() { drained = true })
	tb.Eng.RunWhile(func() bool { return !drained })
	pre := tb.S4D.Stats()
	if pre.MetaSpills == 0 {
		t.Fatalf("budget never spilled before the crash: %+v", pre)
	}
	tb.S4D.SnapshotNow()

	plan, err := faults.Parse("corrupt:dmt.spill:bitflip:64")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.RestartS4D(RestartOptions{Warm: true, CorruptSeed: 9, CorruptPlan: plan}); err != nil {
		t.Fatal(err)
	}
	tb.Eng.Run()

	// Every read must return the written bytes. Quarantined files are full
	// cache misses served by the DServers; wrong data is the one outcome
	// that must never appear.
	buf := make([]byte, extLen)
	for i := 0; i < nFiles; i++ {
		for e := 0; e < perFile; e++ {
			finished := false
			if err := tb.S4D.Read(i%ranks, name(i), offs[i][e], extLen, buf, func(err error) {
				if err != nil {
					t.Errorf("read %s/%d: %v", name(i), e, err)
				}
				finished = true
			}); err != nil {
				t.Fatal(err)
			}
			tb.Eng.RunWhile(func() bool { return !finished })
			if want := payload(i, e); !bytes.Equal(buf, want) {
				t.Fatalf("file %d ext %d: corrupt spill record surfaced wrong bytes", i, e)
			}
		}
	}
	st := tb.S4D.Stats()
	if st.MetaSpillQuarantined == 0 {
		t.Fatalf("corrupted spill records were never quarantined: %+v", st)
	}
	if st.BytesReadDisk == 0 {
		t.Fatal("quarantined files were not served from the DServers")
	}
}
