package dmt

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"s4dcache/internal/extent"
)

// Epoch-view tests: the lock-free read surface (ViewLookup, ViewMappedAt,
// ViewContains) must agree with the locked surface when quiescent, and
// concurrent readers must never observe a torn mapping while a writer
// churns a stripe.

func TestViewLookupMatchesAppendLookup(t *testing.T) {
	s := NewStriped()
	file := "view.dat"
	// Build a fragmented layout: mapped runs with holes between them.
	if err := s.Insert(file, 0, 100, 1000, false); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(file, 150, 50, 2000, true); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(file, 300, 200, 3000, false); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(file, 350, 25); err != nil {
		t.Fatal(err)
	}
	if err := s.SetDirty(file, 0, 40); err != nil {
		t.Fatal(err)
	}

	ranges := [][2]int64{
		{0, 100}, {0, 600}, {50, 100}, {120, 60}, {140, 20},
		{150, 50}, {200, 300}, {340, 40}, {490, 100}, {600, 50},
	}
	for _, r := range ranges {
		wantH, wantG := s.AppendLookup(nil, nil, file, r[0], r[1])
		gotH, gotG, ok := s.ViewLookup(nil, nil, file, r[0], r[1])
		if !ok {
			t.Fatalf("range %v: view reports spilled on an unbounded table", r)
		}
		if len(gotH) != len(wantH) || len(gotG) != len(wantG) {
			t.Fatalf("range %v: view %d hits/%d gaps, locked %d hits/%d gaps",
				r, len(gotH), len(gotG), len(wantH), len(wantG))
		}
		for i := range wantH {
			if gotH[i] != wantH[i] {
				t.Fatalf("range %v hit %d: view %+v locked %+v", r, i, gotH[i], wantH[i])
			}
		}
		for i := range wantG {
			if gotG[i] != wantG[i] {
				t.Fatalf("range %v gap %d: view %+v locked %+v", r, i, gotG[i], wantG[i])
			}
		}
		if s.ViewContains(file, r[0], r[1]) != s.Contains(file, r[0], r[1]) {
			t.Fatalf("range %v: ViewContains disagrees with Contains", r)
		}
		for _, h := range wantH {
			if !s.ViewMappedAt(file, h.Off, h.Len, h.CacheOff) {
				t.Fatalf("range %v: ViewMappedAt rejects live hit %+v", r, h)
			}
			if s.ViewMappedAt(file, h.Off, h.Len, h.CacheOff+1) {
				t.Fatalf("range %v: ViewMappedAt accepts wrong cache offset for %+v", r, h)
			}
		}
	}
	// Unknown file: whole range is one gap, nothing mapped.
	if h, g, ok := s.ViewLookup(nil, nil, "other", 10, 20); !ok || len(h) != 0 || len(g) != 1 || g[0] != (extent.Gap{Off: 10, Len: 20}) {
		t.Fatalf("unknown file: hits=%v gaps=%v", h, g)
	}
	if s.ViewMappedAt("other", 0, 10, 0) {
		t.Fatal("ViewMappedAt true for unknown file")
	}
}

func TestViewLookupAfterDeleteAndReplay(t *testing.T) {
	s := NewStriped()
	file := "gone.dat"
	if err := s.Insert(file, 0, 100, 500, false); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(file, 0, 100); err != nil {
		t.Fatal(err)
	}
	if s.ViewContains(file, 0, 1) {
		t.Fatal("view still contains deleted mapping")
	}
	if h, g, ok := s.ViewLookup(nil, nil, file, 0, 100); !ok || len(h) != 0 || len(g) != 1 {
		t.Fatalf("deleted file: hits=%v gaps=%v", h, g)
	}
}

// TestStripedConcurrentViewReaders is the torn-mapping property test
// (ISSUE 6, satellite 4; runs under -race in CI). One writer flips a file
// between two batch-inserted layouts, A and B, with distinct cache-offset
// bases, and toggles dirty flags across the whole file between the flips.
// Concurrent lock-free readers assert every snapshot is exactly layout A
// or layout B — full coverage from a single base, uniform dirty bit — and
// that the stripe version only moves forward. A torn batch, a half-applied
// flag flip, or a stale-after-fresh view all fail the oracle.
func TestStripedConcurrentViewReaders(t *testing.T) {
	s := NewStriped()
	const (
		file    = "torn.dat"
		fileLen = int64(4096)
		baseA   = int64(1 << 20)
		baseB   = int64(2 << 20)
	)
	batch := func(base int64, frag int64) []FragmentInsert {
		var out []FragmentInsert
		for off := int64(0); off < fileLen; off += frag {
			out = append(out, FragmentInsert{Off: off, Length: frag, CacheOff: base + off, Dirty: false})
		}
		return out
	}
	layoutA := batch(baseA, 256) // 16 fragments
	layoutB := batch(baseB, 512) // 8 fragments
	if err := s.InsertBatch(file, layoutA); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		cur := layoutA
		for i := 0; !stop.Load(); i++ {
			// Toggle the dirty bit across the whole file, then flip layouts.
			if err := s.SetDirty(file, 0, fileLen); err != nil {
				t.Error(err)
				return
			}
			if err := s.SetClean(file, 0, fileLen); err != nil {
				t.Error(err)
				return
			}
			if err := s.Delete(file, 0, fileLen); err != nil {
				t.Error(err)
				return
			}
			if cur = layoutB; i%2 == 1 {
				cur = layoutA
			}
			if err := s.InsertBatch(file, cur); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	readers := 4
	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var hits []Hit
			var gaps []extent.Gap
			var lastVer uint64
			for n := 0; !stop.Load(); n++ {
				ver := s.StripeVersion(file)
				if ver < lastVer {
					errs <- "stripe version moved backwards"
					return
				}
				lastVer = ver
				var ok bool
				hits, gaps, ok = s.ViewLookup(hits[:0], gaps[:0], file, 0, fileLen)
				if !ok {
					errs <- "view reports spilled on an unbounded table"
					return
				}
				if len(hits) == 0 {
					// Mid-flip epoch: Delete published before the re-insert.
					// Legal — the whole file is one gap.
					if len(gaps) != 1 || gaps[0].Off != 0 || gaps[0].Len != fileLen {
						errs <- "empty view is not one whole-file gap"
						return
					}
					continue
				}
				if len(gaps) != 0 {
					errs <- "torn view: partial coverage"
					return
				}
				base := hits[0].CacheOff - hits[0].Off
				if base != baseA && base != baseB {
					errs <- "unknown cache base"
					return
				}
				dirty := hits[0].Dirty
				pos := int64(0)
				for _, h := range hits {
					if h.Off != pos {
						errs <- "non-contiguous hits"
						return
					}
					if h.CacheOff != base+h.Off {
						errs <- "torn view: mixed layouts"
						return
					}
					if h.Dirty != dirty {
						errs <- "torn view: mixed dirty bits"
						return
					}
					pos += h.Len
				}
				if pos != fileLen {
					errs <- "coverage short of file length"
					return
				}
			}
		}()
	}

	time.Sleep(200 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}

// TestViewLookupZeroAllocs pins the lock-free read surface at zero
// allocations per operation (ISSUE 6, satellite 3; `make alloc-check`).
func TestViewLookupZeroAllocs(t *testing.T) {
	s := NewStriped()
	file := "alloc.dat"
	for off := int64(0); off < 4096; off += 256 {
		if err := s.Insert(file, off, 256, 10000+off, off%512 == 0); err != nil {
			t.Fatal(err)
		}
	}
	hits := make([]Hit, 0, 32)
	gaps := make([]extent.Gap, 0, 32)
	if n := testing.AllocsPerRun(200, func() {
		hits, gaps, _ = s.ViewLookup(hits[:0], gaps[:0], file, 100, 2000)
	}); n != 0 {
		t.Fatalf("ViewLookup allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if !s.ViewMappedAt(file, 256, 256, 10256) {
			t.Fatal("mapping missing")
		}
	}); n != 0 {
		t.Fatalf("ViewMappedAt allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if !s.ViewContains(file, 0, 4096) {
			t.Fatal("coverage missing")
		}
	}); n != 0 {
		t.Fatalf("ViewContains allocates %v/op, want 0", n)
	}
}
