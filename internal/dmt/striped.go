package dmt

import (
	"fmt"
	"sync"
	"sync/atomic"

	"s4dcache/internal/extent"
	"s4dcache/internal/kvstore"
	"s4dcache/internal/names"
	"s4dcache/internal/staterec"
)

// numStripes is the lock-stripe count of the concurrent table. A power of
// two so routing is a mask; 16 matches the kvstore shard count, so stripe
// concurrency is never throttled below store concurrency.
const numStripes = 16

// stripeIndex routes a file name to its stripe (FNV-1a, masked).
func stripeIndex(file string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(file); i++ {
		h ^= uint32(file[i])
		h *= 16777619
	}
	return h & (numStripes - 1)
}

// Striped is a lock-striped concurrent Data Mapping Table: numStripes
// independent sub-tables, each guarding the files that hash to it with its
// own mutex. Per-file operations touch exactly one stripe, so concurrent
// mutations of distinct files proceed in parallel, and their durable
// appends coalesce in the store's group committer. All sub-tables share
// one persist-log sequence (an atomic counter injected via Table.nextSeq),
// so log keys stay globally unique and replay order is well defined. They
// also share one name arena, and a MetaBudget divides evenly across
// stripes — each stripe's clock spills independently under its own lock,
// republishing the file's epoch view as a spilled sentinel so the
// lock-free read path never observes a half-spilled file.
//
// The simulator core keeps the plain Table — its cross-file scan order
// (first-mapped) drives the deterministic Rebuilder schedule. Striped is
// the concurrent server-side API layered on the same persistent format: a
// store written by either table opens in the other.
type Striped struct {
	stripes [numStripes]dstripe
	seq     atomic.Uint64
	store   *kvstore.Store
	arena   *names.Arena
	// slots is the published epoch-view index: an immutable slot array
	// addressed by arena id (view.go). Writers publish through their
	// file's stable slot; the array itself is only swapped when it grows
	// (slotMu serializes growth across stripes).
	slots  atomic.Pointer[[]*fileSlot]
	slotMu sync.Mutex
}

// dstripe is one lock stripe: the live sub-table behind its writer mutex
// plus the published epoch view readers traverse lock-free (view.go). The
// trailing padding keeps neighbouring stripes' mutexes and view pointers
// on separate cache lines — adjacent array elements would otherwise false-
// share under multicore serve load.
type dstripe struct {
	mu sync.Mutex
	t  *Table
	s  *Striped // parent, for the shared view slot array
	// version counts this stripe's view publications (the torn-read
	// oracle). Writers add with the mutex held; readers only load.
	version atomic.Uint64
	_       [64]byte
}

// NewStriped returns a memory-only concurrent table.
func NewStriped(opts ...Option) *Striped {
	var c config
	for _, o := range opts {
		o(&c)
	}
	if c.arena == nil {
		c.arena = names.NewArena()
	}
	s := &Striped{arena: c.arena}
	empty := make([]*fileSlot, 0)
	s.slots.Store(&empty)
	// The budget divides evenly; each stripe enforces its share under its
	// own lock, so no cross-stripe coordination rides the serve path.
	sc := c
	if c.budget > 0 {
		sc.budget = (c.budget + numStripes - 1) / numStripes
	}
	for i := range s.stripes {
		sh := &s.stripes[i]
		sh.s = s
		t := newTable(sc)
		t.nextSeq = s.nextSeq
		t.lastSeq = s.seq.Load
		// Spill and fault-in republish through the stripe so lock-free
		// readers flip atomically between resident entries and the
		// spilled sentinel.
		t.onResident = func(name string) { sh.republish(name) }
		sh.t = t
	}
	return s
}

// Arena returns the shared name-interning arena.
func (s *Striped) Arena() *names.Arena { return s.arena }

// OpenStriped returns a concurrent table persisted in store, replaying
// any existing baseline records and operation log (written by either a
// plain Table or a Striped one) with each file routed to its stripe.
// Clean baselines install spilled and fault in on first touch, so a
// million-file store reopens without decoding — or holding — extents for
// files nothing looks at.
func OpenStriped(store *kvstore.Store, opts ...Option) (*Striped, error) {
	if store == nil {
		return nil, fmt.Errorf("dmt: store is required")
	}
	s := NewStriped(opts...)
	s.store = store
	for i := range s.stripes {
		s.stripes[i].t.store = store
	}
	max, _, err := walkState(store,
		func(name string, h staterec.FileMapHeader, total, dirty int64, data []byte) {
			s.stripes[stripeIndex(name)].t.installBaseline(name, h, total, dirty, data)
		},
		func(op logOp) {
			s.stripes[stripeIndex(op.file)].t.apply(op)
		},
	)
	if err != nil {
		return nil, err
	}
	s.seq.Store(max)
	// Replay applied ops directly into the sub-tables, bypassing the
	// per-call publication; publish every stripe's view — and run each
	// stripe's budget sweep — before any reader can exist.
	for i := range s.stripes {
		s.stripes[i].t.enforceBudget(-1)
		s.stripes[i].republishAll()
	}
	return s, nil
}

func (s *Striped) nextSeq() uint64 { return s.seq.Add(1) }

// SetMetaBudget adjusts the resident budget live, dividing it across
// stripes and sweeping each immediately. Spills republish through the
// stripes' epoch views as they happen.
func (s *Striped) SetMetaBudget(n int64) {
	per := n
	if n > 0 {
		per = (n + numStripes - 1) / numStripes
	}
	for i := range s.stripes {
		sh := &s.stripes[i]
		sh.mu.Lock()
		sh.t.SetMetaBudget(per)
		sh.mu.Unlock()
	}
}

// stripe locks and returns the sub-table owning file. The caller must
// unlock the returned mutex.
func (s *Striped) stripe(file string) (*Table, *sync.Mutex) {
	sh := &s.stripes[stripeIndex(file)]
	sh.mu.Lock()
	return sh.t, &sh.mu
}

// Insert maps [off, off+length) of file to cacheOff, as Table.Insert.
// The stripe's epoch view republishes before the mutex is released, so
// lock-free readers see either the old or the new mapping, never a
// partial state.
func (s *Striped) Insert(file string, off, length, cacheOff int64, dirty bool) error {
	sh := &s.stripes[stripeIndex(file)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	err := sh.t.Insert(file, off, length, cacheOff, dirty)
	sh.republish(file)
	return err
}

// InsertBatch maps several fragments of one file atomically, as
// Table.InsertBatch: the fragments commit as one store batch, which the
// group committer may coalesce with concurrent stripes' commits into a
// single WAL sync. The epoch view publishes once, after every fragment
// applied — a reader can never observe a torn batch.
func (s *Striped) InsertBatch(file string, frags []FragmentInsert) error {
	sh := &s.stripes[stripeIndex(file)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	err := sh.t.InsertBatch(file, frags)
	sh.republish(file)
	return err
}

// Delete removes mappings covering [off, off+length), republishing the
// stripe's epoch view before the mutex is released.
func (s *Striped) Delete(file string, off, length int64) error {
	sh := &s.stripes[stripeIndex(file)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	err := sh.t.Delete(file, off, length)
	sh.republish(file)
	return err
}

// SetClean clears the D_flag across [off, off+length). One publication
// for the whole range: lock-free readers see the flag flip atomically
// even when it spans several mapped fragments.
func (s *Striped) SetClean(file string, off, length int64) error {
	sh := &s.stripes[stripeIndex(file)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	err := sh.t.SetClean(file, off, length)
	sh.republish(file)
	return err
}

// SetDirty sets the D_flag across [off, off+length), publishing once as
// SetClean does.
func (s *Striped) SetDirty(file string, off, length int64) error {
	sh := &s.stripes[stripeIndex(file)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	err := sh.t.SetDirty(file, off, length)
	sh.republish(file)
	return err
}

// Lookup splits [off, off+length) of file into mapped subranges and gaps.
// A lookup of a spilled file faults it back in and republishes its view.
func (s *Striped) Lookup(file string, off, length int64) ([]Hit, []extent.Gap) {
	return s.AppendLookup(nil, nil, file, off, length)
}

// AppendLookup is Lookup appending into caller-supplied buffers. The
// buffers belong to the caller; only the stripe's internal scratch is
// shared, and it is protected by the stripe lock.
func (s *Striped) AppendLookup(hits []Hit, gaps []extent.Gap, file string, off, length int64) ([]Hit, []extent.Gap) {
	t, mu := s.stripe(file)
	defer mu.Unlock()
	return t.AppendLookup(hits, gaps, file, off, length)
}

// Contains reports whether the full range is mapped.
func (s *Striped) Contains(file string, off, length int64) bool {
	t, mu := s.stripe(file)
	defer mu.Unlock()
	return t.Contains(file, off, length)
}

// FileMapped reports whether any range of file is currently mapped.
func (s *Striped) FileMapped(file string) bool {
	t, mu := s.stripe(file)
	defer mu.Unlock()
	return t.FileMapped(file)
}

// DirtyExtents returns up to max dirty mapped ranges (all if max <= 0),
// in stripe order then each stripe's first-mapped order.
func (s *Striped) DirtyExtents(max int) []Hit {
	var out []Hit
	for i := range s.stripes {
		sh := &s.stripes[i]
		sh.mu.Lock()
		rem := 0
		if max > 0 {
			rem = max - len(out)
		}
		out = append(out, sh.t.DirtyExtents(rem)...)
		sh.mu.Unlock()
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

// CleanExtents returns up to max clean mapped ranges (all if max <= 0).
// Spilled files fault in for the scan; each stripe resweeps its budget
// afterwards and republishes what it respilled.
func (s *Striped) CleanExtents(max int) []Hit {
	var out []Hit
	for i := range s.stripes {
		sh := &s.stripes[i]
		sh.mu.Lock()
		rem := 0
		if max > 0 {
			rem = max - len(out)
		}
		out = append(out, sh.t.CleanExtents(rem)...)
		sh.mu.Unlock()
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

// Entries returns the total mapped extent count.
func (s *Striped) Entries() int {
	n := 0
	for i := range s.stripes {
		sh := &s.stripes[i]
		sh.mu.Lock()
		n += sh.t.Entries()
		sh.mu.Unlock()
	}
	return n
}

// Bytes returns the total mapped byte count.
func (s *Striped) Bytes() int64 {
	var n int64
	for i := range s.stripes {
		sh := &s.stripes[i]
		sh.mu.Lock()
		n += sh.t.Bytes()
		sh.mu.Unlock()
	}
	return n
}

// DirtyBytes returns the dirty mapped bytes across stripes.
func (s *Striped) DirtyBytes() int64 {
	var n int64
	for i := range s.stripes {
		sh := &s.stripes[i]
		sh.mu.Lock()
		n += sh.t.DirtyBytes()
		sh.mu.Unlock()
	}
	return n
}

// HasDirty reports whether any stripe holds a dirty mapping. Each stripe
// answers in O(1) from its incremental counter, and the scan stops at the
// first dirty stripe — the concurrent Rebuilder's poll predicate.
func (s *Striped) HasDirty() bool {
	for i := range s.stripes {
		sh := &s.stripes[i]
		sh.mu.Lock()
		dirty := sh.t.HasDirty()
		sh.mu.Unlock()
		if dirty {
			return true
		}
	}
	return false
}

// MetadataBytes estimates the persistent table size at EntryBytes per
// entry.
func (s *Striped) MetadataBytes() int64 { return int64(s.Entries()) * EntryBytes }

// ResidentBytes returns the packed extent bytes resident across stripes.
func (s *Striped) ResidentBytes() int64 {
	var n int64
	for i := range s.stripes {
		sh := &s.stripes[i]
		sh.mu.Lock()
		n += sh.t.ResidentBytes()
		sh.mu.Unlock()
	}
	return n
}

// MemoryBytes returns the measured footprint across stripes (excluding
// the shared arena; see Table.MemoryBytes).
func (s *Striped) MemoryBytes() int64 {
	var n int64
	for i := range s.stripes {
		sh := &s.stripes[i]
		sh.mu.Lock()
		n += sh.t.MemoryBytes()
		sh.mu.Unlock()
	}
	return n
}

// Stats returns aggregated activity counters across stripes.
func (s *Striped) Stats() Stats {
	var out Stats
	for i := range s.stripes {
		sh := &s.stripes[i]
		sh.mu.Lock()
		st := sh.t.Stats()
		sh.mu.Unlock()
		out.Inserts += st.Inserts
		out.Deletes += st.Deletes
		out.Entries += st.Entries
		out.Bytes += st.Bytes
		out.ResidentBytes += st.ResidentBytes
		out.MemoryBytes += st.MemoryBytes
		out.SpilledFiles += st.SpilledFiles
		out.Spills += st.Spills
		out.FaultIns += st.FaultIns
		out.SpillQuarantined += st.SpillQuarantined
		out.SpillSkipped += st.SpillSkipped
	}
	return out
}

// Compact rewrites the persistent state as per-file baseline records and
// drops the op log — only churned files are resealed, as Table.Compact.
// It holds every stripe lock for the duration: the log delete/rewrite is
// a global operation and must not interleave with stripe mutations. The
// shared sequence counter is never reset; baseline gating relies on it
// staying monotonic.
func (s *Striped) Compact() error {
	if s.store == nil {
		return nil
	}
	for i := range s.stripes {
		s.stripes[i].mu.Lock()
	}
	defer func() {
		for i := range s.stripes {
			s.stripes[i].mu.Unlock()
		}
	}()
	for i := range s.stripes {
		t := s.stripes[i].t
		for _, si := range t.order {
			if err := t.writeBaseline(si); err != nil {
				return err
			}
		}
	}
	for _, k := range s.store.Keys(opPrefix) {
		if err := s.store.Delete(k); err != nil {
			return fmt.Errorf("dmt: compact: %w", err)
		}
	}
	return s.store.Compact()
}
