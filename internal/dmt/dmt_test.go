package dmt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"s4dcache/internal/kvstore"
)

func TestInsertLookup(t *testing.T) {
	d := New()
	if err := d.Insert("f", 1000, 100, 5000, true); err != nil {
		t.Fatal(err)
	}
	hits, gaps := d.Lookup("f", 1000, 100)
	if len(hits) != 1 || len(gaps) != 0 {
		t.Fatalf("hits=%v gaps=%v", hits, gaps)
	}
	h := hits[0]
	if h.Off != 1000 || h.Len != 100 || h.CacheOff != 5000 || !h.Dirty {
		t.Fatalf("hit = %+v", h)
	}
}

func TestLookupClipsAndTranslates(t *testing.T) {
	d := New()
	if err := d.Insert("f", 1000, 100, 5000, false); err != nil {
		t.Fatal(err)
	}
	hits, gaps := d.Lookup("f", 1050, 200)
	if len(hits) != 1 {
		t.Fatalf("hits = %+v", hits)
	}
	h := hits[0]
	if h.Off != 1050 || h.Len != 50 || h.CacheOff != 5050 {
		t.Fatalf("clipped hit = %+v, want off 1050 len 50 cacheOff 5050", h)
	}
	if len(gaps) != 1 || gaps[0].Off != 1100 || gaps[0].Len != 150 {
		t.Fatalf("gaps = %+v", gaps)
	}
}

func TestLookupMissingFileAllGap(t *testing.T) {
	d := New()
	hits, gaps := d.Lookup("nope", 10, 20)
	if hits != nil || len(gaps) != 1 || gaps[0].Off != 10 || gaps[0].Len != 20 {
		t.Fatalf("hits=%v gaps=%v", hits, gaps)
	}
	if _, gaps := d.Lookup("nope", 0, 0); gaps != nil {
		t.Fatal("zero-length lookup produced gaps")
	}
}

func TestContains(t *testing.T) {
	d := New()
	if err := d.Insert("f", 0, 100, 0, false); err != nil {
		t.Fatal(err)
	}
	if !d.Contains("f", 10, 50) {
		t.Fatal("covered range not contained")
	}
	if d.Contains("f", 50, 100) {
		t.Fatal("partially covered range contained")
	}
	if d.Contains("g", 0, 10) {
		t.Fatal("missing file contained")
	}
}

func TestDirtyLifecycle(t *testing.T) {
	d := New()
	if err := d.Insert("f", 0, 100, 0, true); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert("f", 200, 100, 200, false); err != nil {
		t.Fatal(err)
	}
	dirty := d.DirtyExtents(0)
	if len(dirty) != 1 || dirty[0].Off != 0 || dirty[0].File != "f" {
		t.Fatalf("DirtyExtents = %+v", dirty)
	}
	clean := d.CleanExtents(0)
	if len(clean) != 1 || clean[0].Off != 200 {
		t.Fatalf("CleanExtents = %+v", clean)
	}
	if err := d.SetClean("f", 0, 100); err != nil {
		t.Fatal(err)
	}
	if len(d.DirtyExtents(0)) != 0 {
		t.Fatal("SetClean left dirty extents")
	}
	if err := d.SetDirty("f", 200, 50); err != nil {
		t.Fatal(err)
	}
	dirty = d.DirtyExtents(0)
	if len(dirty) != 1 || dirty[0].Off != 200 || dirty[0].Len != 50 {
		t.Fatalf("partial SetDirty = %+v", dirty)
	}
	// The untouched half stays clean with a correctly advanced cache off.
	hits, _ := d.Lookup("f", 250, 50)
	if len(hits) != 1 || hits[0].Dirty || hits[0].CacheOff != 250 {
		t.Fatalf("clean tail = %+v", hits)
	}
}

func TestSetCleanOnMissingFileNoop(t *testing.T) {
	d := New()
	if err := d.SetClean("missing", 0, 10); err != nil {
		t.Fatal(err)
	}
	if err := d.SetDirty("missing", 0, 10); err != nil {
		t.Fatal(err)
	}
}

func TestDelete(t *testing.T) {
	d := New()
	if err := d.Insert("f", 0, 100, 1000, false); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete("f", 25, 50); err != nil {
		t.Fatal(err)
	}
	hits, gaps := d.Lookup("f", 0, 100)
	if len(hits) != 2 || len(gaps) != 1 {
		t.Fatalf("hits=%v gaps=%v", hits, gaps)
	}
	if hits[1].Off != 75 || hits[1].CacheOff != 1075 {
		t.Fatalf("tail mapping = %+v, want cacheOff 1075", hits[1])
	}
}

func TestOverwriteSplitsCacheOffsets(t *testing.T) {
	d := New()
	if err := d.Insert("f", 0, 300, 0, false); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert("f", 100, 100, 9000, true); err != nil {
		t.Fatal(err)
	}
	hits, _ := d.Lookup("f", 0, 300)
	if len(hits) != 3 {
		t.Fatalf("hits = %+v", hits)
	}
	if hits[0].CacheOff != 0 || hits[1].CacheOff != 9000 || hits[2].CacheOff != 200 {
		t.Fatalf("cache offsets = %d %d %d, want 0 9000 200",
			hits[0].CacheOff, hits[1].CacheOff, hits[2].CacheOff)
	}
	if !hits[1].Dirty || hits[0].Dirty || hits[2].Dirty {
		t.Fatal("dirty flags wrong after overwrite")
	}
}

func TestMetadataBytes(t *testing.T) {
	d := New()
	for i := int64(0); i < 10; i++ {
		if err := d.Insert("f", i*1000, 100, i*100, false); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.MetadataBytes(); got != 10*EntryBytes {
		t.Fatalf("MetadataBytes = %d, want %d", got, 10*EntryBytes)
	}
	if d.Bytes() != 1000 {
		t.Fatalf("Bytes = %d, want 1000", d.Bytes())
	}
	st := d.Stats()
	if st.Inserts != 10 || st.Entries != 10 {
		t.Fatalf("Stats = %+v", st)
	}
}

func openPersistent(t *testing.T, backend kvstore.Backend) *Table {
	t.Helper()
	store, err := kvstore.Open(backend, "dmt", kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Open(store)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPersistenceSurvivesReopen(t *testing.T) {
	b := kvstore.NewMemBackend()
	d := openPersistent(t, b)
	if err := d.Insert("f", 0, 100, 5000, true); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert("f", 500, 100, 6000, false); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete("f", 0, 50); err != nil {
		t.Fatal(err)
	}
	if err := d.SetClean("f", 50, 50); err != nil {
		t.Fatal(err)
	}

	d2 := openPersistent(t, b)
	if d2.Entries() != d.Entries() || d2.Bytes() != d.Bytes() {
		t.Fatalf("reopened table differs: %d/%d vs %d/%d",
			d2.Entries(), d2.Bytes(), d.Entries(), d.Bytes())
	}
	hits, _ := d2.Lookup("f", 50, 50)
	if len(hits) != 1 || hits[0].CacheOff != 5050 || hits[0].Dirty {
		t.Fatalf("recovered mapping = %+v", hits)
	}
}

func TestOpenResumesAfterHighestSeq(t *testing.T) {
	// The recovered sequence counter must be the max over every log key,
	// not whatever the backend lists last: resuming low would overwrite
	// live records on the next persist.
	b := kvstore.NewMemBackend()
	d := openPersistent(t, b)
	for i := int64(0); i < 12; i++ {
		if err := d.Insert("f", i*100, 100, i*100, false); err != nil {
			t.Fatal(err)
		}
	}
	d2 := openPersistent(t, b)
	if d2.seq != d.seq {
		t.Fatalf("recovered seq %d, want %d", d2.seq, d.seq)
	}
	// New ops after reopen must extend the log, not clobber it.
	if err := d2.Insert("g", 0, 10, 0, false); err != nil {
		t.Fatal(err)
	}
	if d3 := openPersistent(t, b); d3.Entries() != d2.Entries() {
		t.Fatalf("post-reopen insert lost: %d entries, want %d", d3.Entries(), d2.Entries())
	}
}

func TestOpenRejectsMalformedLogKey(t *testing.T) {
	b := kvstore.NewMemBackend()
	d := openPersistent(t, b)
	if err := d.Insert("f", 0, 100, 0, false); err != nil {
		t.Fatal(err)
	}
	// A corrupt key in the op namespace must fail recovery loudly instead
	// of being silently skipped with the counter left at zero.
	store, err := kvstore.Open(b, "dmt", kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put("dmtop|not-a-number", []byte{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(store); err == nil {
		t.Fatal("Open accepted a malformed log key")
	}
}

func TestPersistenceCompact(t *testing.T) {
	b := kvstore.NewMemBackend()
	d := openPersistent(t, b)
	for i := int64(0); i < 50; i++ {
		if err := d.Insert("f", i*100, 100, i*100, i%2 == 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Delete("f", 0, 2500); err != nil {
		t.Fatal(err)
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	d2 := openPersistent(t, b)
	if d2.Entries() != 25 || d2.Bytes() != 2500 {
		t.Fatalf("post-compact recovery: %d entries %d bytes", d2.Entries(), d2.Bytes())
	}
	// Sequence must continue without clobbering existing ops.
	if err := d2.Insert("g", 0, 10, 0, false); err != nil {
		t.Fatal(err)
	}
	d3 := openPersistent(t, b)
	if d3.Entries() != 26 {
		t.Fatalf("post-compact insert lost: %d entries", d3.Entries())
	}
}

func TestInsertBatchAtomicAndRecoverable(t *testing.T) {
	b := kvstore.NewMemBackend()
	d := openPersistent(t, b)
	frags := []FragmentInsert{
		{Off: 0, Length: 100, CacheOff: 1000, Dirty: true},
		{Off: 100, Length: 50, CacheOff: 5000, Dirty: true},
		{Off: 0, Length: 0},  // ignored
		{Off: 9, Length: -4}, // ignored
	}
	if err := d.InsertBatch("f", frags); err != nil {
		t.Fatal(err)
	}
	if d.Entries() != 2 || d.Bytes() != 150 {
		t.Fatalf("entries=%d bytes=%d", d.Entries(), d.Bytes())
	}
	d2 := openPersistent(t, b)
	hits, _ := d2.Lookup("f", 100, 50)
	if len(hits) != 1 || hits[0].CacheOff != 5000 {
		t.Fatalf("recovered batch = %+v", hits)
	}
	// Empty and all-degenerate batches are no-ops.
	if err := d.InsertBatch("f", nil); err != nil {
		t.Fatal(err)
	}
	if err := d.InsertBatch("f", []FragmentInsert{{Length: 0}}); err != nil {
		t.Fatal(err)
	}
	// Memory-only tables accept batches too.
	m := New()
	if err := m.InsertBatch("g", frags[:2]); err != nil {
		t.Fatal(err)
	}
	if m.Entries() != 2 {
		t.Fatal("memory-only batch not applied")
	}
}

func TestOpenNilStore(t *testing.T) {
	if _, err := Open(nil); err == nil {
		t.Fatal("nil store accepted")
	}
}

func TestDecodeOpRejectsGarbage(t *testing.T) {
	if _, err := decodeOp(nil); err == nil {
		t.Fatal("nil record accepted")
	}
	if _, err := decodeOp([]byte{99, 0, 0, 0, 0}); err == nil {
		t.Fatal("bad kind accepted")
	}
	op := encodeOp(logOp{kind: kindInsert, file: "abc", off: 1, length: 2, cacheOff: 3, dirty: true})
	if _, err := decodeOp(op[:len(op)-3]); err == nil {
		t.Fatal("truncated record accepted")
	}
	got, err := decodeOp(op)
	if err != nil || got.file != "abc" || got.off != 1 || got.length != 2 || got.cacheOff != 3 || !got.dirty {
		t.Fatalf("round trip = %+v, %v", got, err)
	}
}

// Property: a persisted table recovered after arbitrary operations equals
// the live table, byte for byte.
func TestRecoveryEquivalenceProperty(t *testing.T) {
	f := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := int(opsRaw%30) + 1
		b := kvstore.NewMemBackend()
		store, err := kvstore.Open(b, "dmt", kvstore.Options{})
		if err != nil {
			return false
		}
		d, err := Open(store)
		if err != nil {
			return false
		}
		files := []string{"a", "b"}
		for i := 0; i < ops; i++ {
			file := files[rng.Intn(2)]
			off := rng.Int63n(2000)
			length := rng.Int63n(300) + 1
			switch rng.Intn(4) {
			case 0:
				if d.Delete(file, off, length) != nil {
					return false
				}
			case 1:
				if d.SetClean(file, off, length) != nil {
					return false
				}
			default:
				if d.Insert(file, off, length, rng.Int63n(10000), rng.Intn(2) == 0) != nil {
					return false
				}
			}
		}
		store2, err := kvstore.Open(b, "dmt", kvstore.Options{})
		if err != nil {
			return false
		}
		d2, err := Open(store2)
		if err != nil {
			return false
		}
		if d2.Entries() != d.Entries() || d2.Bytes() != d.Bytes() {
			return false
		}
		// Every byte of both files must agree on mapping and dirtiness.
		for _, file := range files {
			for x := int64(0); x < 2400; x += 7 {
				h1, _ := d.Lookup(file, x, 1)
				h2, _ := d2.Lookup(file, x, 1)
				if len(h1) != len(h2) {
					return false
				}
				if len(h1) == 1 && (h1[0].CacheOff != h2[0].CacheOff || h1[0].Dirty != h2[0].Dirty) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
