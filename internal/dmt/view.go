package dmt

import (
	"sync/atomic"

	"s4dcache/internal/extent"
)

// Epoch views: each stripe of the concurrent table publishes an immutable
// snapshot of its mappings that readers traverse without taking the stripe
// mutex. The scheme is RCU-style rather than seqlock-style because the
// underlying state includes Go maps, which cannot be read concurrently
// with a write at all — so readers get a consistent pointer-loaded
// snapshot instead of a retry loop over live state.
//
// Two levels keep publication cheap:
//
//   - stripeView holds an immutable file → slot map. It is rebuilt (copied)
//     only when a file first appears in the stripe — the slow, rare event.
//   - fileSlot holds an atomic pointer to the file's immutable sorted
//     extent slice. Every mutation of a file republishes just that slice,
//     O(extents of the file), and swaps one pointer.
//
// Writers serialize per stripe (the stripe mutex), mutate the live Table,
// and republish before releasing the mutex — one publication per exported
// Striped call, so a multi-fragment InsertBatch becomes visible to readers
// atomically and no reader can observe a torn batch. The per-stripe
// version counter increments after each publication; it is the oracle of
// the torn-mapping property tests and a change detector for diagnostics.
//
// Memory-ordering contract (DESIGN.md §12): the view pointer store is the
// release edge — every Table mutation happens-before the store, and a
// reader's pointer load acquires everything the snapshot was built from.
// Staleness is bounded by the writer's critical section: a reader may see
// the previous epoch, never a partial one.

// stripeView is one stripe's published file set. The map itself is
// immutable; per-file mutations swap the slot's extent pointer instead.
type stripeView struct {
	files map[string]*fileSlot
}

// fileSlot carries one file's current immutable extent snapshot.
type fileSlot struct {
	ext atomic.Pointer[fileExtents]
}

// fileExtents is an immutable sorted extent slice. Never mutated after
// publication.
type fileExtents struct {
	entries []extent.Entry[Mapping]
}

var emptyFileExtents = &fileExtents{}

// republish rebuilds file's published snapshot from the live table. Must
// run with the stripe mutex held (writers are serialized); readers load
// the result lock-free.
func (sh *dstripe) republish(file string) {
	fe := emptyFileExtents
	if m := sh.t.files[file]; m != nil && m.Len() > 0 {
		fe = &fileExtents{entries: m.AppendEntries(make([]extent.Entry[Mapping], 0, m.Len()))}
	}
	v := sh.view.Load()
	if v != nil {
		if slot := v.files[file]; slot != nil {
			slot.ext.Store(fe)
			sh.version.Add(1)
			return
		}
	}
	// First publication of this file in the stripe: copy-on-write the map.
	n := 1
	if v != nil {
		n += len(v.files)
	}
	files := make(map[string]*fileSlot, n)
	if v != nil {
		for k, s := range v.files {
			files[k] = s
		}
	}
	slot := &fileSlot{}
	slot.ext.Store(fe)
	files[file] = slot
	sh.view.Store(&stripeView{files: files})
	sh.version.Add(1)
}

// republishAll rebuilds the stripe's whole view from the live table —
// used after a replay (OpenStriped), where apply bypassed the per-call
// publication.
func (sh *dstripe) republishAll() {
	files := make(map[string]*fileSlot, len(sh.t.files))
	for name, m := range sh.t.files {
		fe := emptyFileExtents
		if m.Len() > 0 {
			fe = &fileExtents{entries: m.AppendEntries(make([]extent.Entry[Mapping], 0, m.Len()))}
		}
		slot := &fileSlot{}
		slot.ext.Store(fe)
		files[name] = slot
	}
	sh.view.Store(&stripeView{files: files})
	sh.version.Add(1)
}

// viewEntries loads file's current published extent snapshot, or nil if
// the file has never been published. Lock-free.
func (s *Striped) viewEntries(file string) []extent.Entry[Mapping] {
	v := s.stripes[stripeIndex(file)].view.Load()
	if v == nil {
		return nil
	}
	slot := v.files[file]
	if slot == nil {
		return nil
	}
	return slot.ext.Load().entries
}

// firstEnding returns the index of the first entry whose End > off — a
// manual binary search (sort.Search's closure would allocate on the
// zero-alloc serve path).
func firstEnding(entries []extent.Entry[Mapping], off int64) int {
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if entries[mid].End() > off {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// ViewLookup is AppendLookup against the stripe's published epoch view:
// the same hits/gaps split, computed without taking any mutex. The result
// is a consistent snapshot — at most one epoch stale, never torn. Callers
// that act on the hits must re-validate after pinning (see ViewMappedAt
// and the core fast read path).
func (s *Striped) ViewLookup(hits []Hit, gaps []extent.Gap, file string, off, length int64) ([]Hit, []extent.Gap) {
	if length <= 0 {
		return hits, gaps
	}
	end := off + length
	entries := s.viewEntries(file)
	pos := off
	for i := firstEnding(entries, off); i < len(entries); i++ {
		e := entries[i]
		if e.Off >= end {
			break
		}
		if e.Off > pos {
			gaps = append(gaps, extent.Gap{Off: pos, Len: e.Off - pos})
			pos = e.Off
		}
		lo, hi := e.Off, e.End()
		cacheOff := e.Val.CacheOff
		if lo < off {
			cacheOff += off - lo
			lo = off
		}
		if hi > end {
			hi = end
		}
		hits = append(hits, Hit{Off: lo, Len: hi - lo, CacheOff: cacheOff, Dirty: e.Val.Dirty})
		pos = hi
	}
	if pos < end {
		gaps = append(gaps, extent.Gap{Off: pos, Len: end - pos})
	}
	return hits, gaps
}

// ViewMappedAt reports whether the published view still maps
// [off, off+length) of file contiguously to cacheOff — the post-pin
// revalidation of the lock-free read path. Lock-free and allocation-free.
func (s *Striped) ViewMappedAt(file string, off, length, cacheOff int64) bool {
	if length <= 0 {
		return true
	}
	entries := s.viewEntries(file)
	end := off + length
	pos, want := off, cacheOff
	for i := firstEnding(entries, off); i < len(entries) && pos < end; i++ {
		e := entries[i]
		if e.Off > pos {
			return false
		}
		if co := e.Val.CacheOff + (pos - e.Off); co != want {
			return false
		}
		adv := e.End() - pos
		if pos+adv > end {
			adv = end - pos
		}
		pos += adv
		want += adv
	}
	return pos >= end
}

// ViewContains reports whether the published view fully maps the range.
// Lock-free and allocation-free.
func (s *Striped) ViewContains(file string, off, length int64) bool {
	if length <= 0 {
		return true
	}
	entries := s.viewEntries(file)
	end := off + length
	pos := off
	for i := firstEnding(entries, off); i < len(entries) && pos < end; i++ {
		e := entries[i]
		if e.Off > pos {
			return false
		}
		if e.End() > pos {
			pos = e.End()
		}
	}
	return pos >= end
}

// StripeVersion returns the publication counter of file's stripe. It
// increments after every published mutation of any file in the stripe —
// the version oracle of the epoch-read property tests.
func (s *Striped) StripeVersion(file string) uint64 {
	return s.stripes[stripeIndex(file)].version.Load()
}
