package dmt

import (
	"sync/atomic"
	"unsafe"

	"s4dcache/internal/extent"
)

// Epoch views: each stripe of the concurrent table publishes an immutable
// snapshot of its mappings that readers traverse without taking the stripe
// mutex. The scheme is RCU-style rather than seqlock-style because the
// underlying state includes Go maps, which cannot be read concurrently
// with a write at all — so readers get a consistent pointer-loaded
// snapshot instead of a retry loop over live state.
//
// Two levels keep publication cheap:
//
//   - the Striped table holds one published slot array indexed by arena
//     id — names are already interned, so the dense id replaces a
//     name-keyed map. The array is immutable once published; it grows by
//     doubling (copy the slot pointers, fill fresh slots, swap one
//     pointer), so admitting a new file is O(1) amortized where a
//     copy-on-write map would pay O(files in the stripe) per admission.
//   - fileSlot holds an atomic pointer to the file's immutable sorted
//     extent slice. Every mutation of a file republishes just that slice,
//     O(extents of the file), and swaps one pointer. Slot pointers are
//     stable across array growth, so a republish through an old array
//     generation is never lost.
//
// Writers serialize per stripe (the stripe mutex), mutate the live Table,
// and republish before releasing the mutex — one publication per exported
// Striped call, so a multi-fragment InsertBatch becomes visible to readers
// atomically and no reader can observe a torn batch. The per-stripe
// version counter increments after each publication; it is the oracle of
// the torn-mapping property tests and a change detector for diagnostics.
//
// The resident-budget spiller publishes through the same mechanism: when
// a file spills, its slot atomically swaps to the spilled sentinel, and a
// fault-in swaps the decoded entries back. A lock-free reader therefore
// sees exactly one of three states — the old entries, the sentinel, or
// the new entries — never a half-spilled file. The sentinel is not "no
// mappings": View* calls report it distinctly (ok=false) so the serve
// path falls back to the locking lookup, which faults the file in.
//
// Memory-ordering contract (DESIGN.md §12): the view pointer store is the
// release edge — every Table mutation happens-before the store, and a
// reader's pointer load acquires everything the snapshot was built from.
// Staleness is bounded by the writer's critical section: a reader may see
// the previous epoch, never a partial one.

// fileSlot carries one file's current immutable extent snapshot. A nil
// pointer means the file was interned (possibly by another table sharing
// the arena) but never published here — no mappings.
type fileSlot struct {
	ext atomic.Pointer[fileExtents]
}

// viewExt is one published extent in a snapshot: 24 bytes after padding,
// against 40 for the generic extent.Entry[Mapping] — a published view
// must not re-inflate extents, or at the million-file scale the views
// would out-weigh the packed slab they mirror.
type viewExt struct {
	off int64
	val uint64 // packed mapping (cache offset << 1 | D_flag)
	len uint32
}

// fileExtents is an immutable sorted extent snapshot: one allocation for
// the whole run (small files dominate file counts; per-file allocation
// overhead is the footprint driver). Never mutated after publication.
// spilled marks the sentinel state: the file's extents live only in its
// baseline record, and view reads must defer to the locking path.
type fileExtents struct {
	ents    []viewExt
	spilled bool
}

var (
	emptyFileExtents   = &fileExtents{}
	spilledFileExtents = &fileExtents{spilled: true}
)

// snapshotFile builds file's publishable snapshot from the live table:
// a copy of its packed extent run when resident, the spilled sentinel
// otherwise.
func (t *Table) snapshotFile(file string) *fileExtents {
	si := t.lookupSlot(file)
	if si < 0 {
		return emptyFileExtents
	}
	fs := &t.files[si]
	if fs.state == fsSpilled {
		if fs.spillN == 0 {
			return emptyFileExtents
		}
		return spilledFileExtents
	}
	n := fs.seg.Len()
	if n == 0 {
		return emptyFileExtents
	}
	offs, lens, vals := t.slab.View(fs.seg)
	ents := make([]viewExt, n)
	for i := range ents {
		ents[i] = viewExt{off: offs[i], val: vals[i], len: lens[i]}
	}
	return &fileExtents{ents: ents}
}

// republish rebuilds file's published snapshot from the live table. Must
// run with the stripe mutex held (writers are serialized); readers load
// the result lock-free.
func (sh *dstripe) republish(file string) {
	id, ok := sh.s.arena.Lookup(file)
	if !ok {
		// Never interned — the table cannot hold it either; nothing to
		// publish.
		return
	}
	sh.s.slotFor(id).ext.Store(sh.t.snapshotFile(file))
	sh.version.Add(1)
}

// republishAll rebuilds the stripe's whole view from the live table —
// used after a replay (OpenStriped), where apply bypassed the per-call
// publication.
func (sh *dstripe) republishAll() {
	t := sh.t
	for i := range t.files {
		id := t.files[i].id
		sh.s.slotFor(id).ext.Store(t.snapshotFile(t.arena.Name(id)))
	}
	sh.version.Add(1)
}

// slotFor returns the published slot of arena id, growing the slot
// array if the id is new. Callers hold their stripe mutex; growth
// serializes on slotMu (ids of different stripes interleave, but each
// id belongs to exactly one stripe, so slot stores never race).
func (s *Striped) slotFor(id uint32) *fileSlot {
	if arr := *s.slots.Load(); int(id) < len(arr) {
		return arr[id]
	}
	return s.growSlots(id)
}

// growSlots doubles the slot array to cover id: copy the stable slot
// pointers, allocate fresh slots for the new range, publish with one
// swap. Readers holding the old array miss only slots no file they can
// name had published into.
func (s *Striped) growSlots(id uint32) *fileSlot {
	s.slotMu.Lock()
	defer s.slotMu.Unlock()
	arr := *s.slots.Load()
	if int(id) < len(arr) {
		return arr[id]
	}
	n := 2 * len(arr)
	if n < 1024 {
		n = 1024
	}
	if n <= int(id) {
		n = int(id) + 1
	}
	next := make([]*fileSlot, n)
	copy(next, arr)
	for i := len(arr); i < n; i++ {
		next[i] = &fileSlot{}
	}
	s.slots.Store(&next)
	return next[id]
}

// viewExtents loads file's current published snapshot, or nil if the
// file has never been published. Lock-free: the arena id lookup and the
// slot array load are both atomic-snapshot reads.
func (s *Striped) viewExtents(file string) *fileExtents {
	id, ok := s.arena.Lookup(file)
	if !ok {
		return nil
	}
	arr := *s.slots.Load()
	if int(id) >= len(arr) {
		return nil
	}
	return arr[id].ext.Load()
}

// firstEnding returns the index of the first packed extent whose end >
// off — a manual binary search (sort.Search's closure would allocate on
// the zero-alloc serve path).
func firstEnding(ents []viewExt, off int64) int {
	lo, hi := 0, len(ents)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ents[mid].off+int64(ents[mid].len) > off {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// ViewLookup is AppendLookup against the stripe's published epoch view:
// the same hits/gaps split, computed without taking any mutex. The third
// return is false when the file's view is the spilled sentinel — the
// buffers come back untouched and the caller must fall back to the
// locking lookup, which faults the file in. When ok, the result is a
// consistent snapshot — at most one epoch stale, never torn. Callers
// that act on the hits must re-validate after pinning (see ViewMappedAt
// and the core fast read path).
func (s *Striped) ViewLookup(hits []Hit, gaps []extent.Gap, file string, off, length int64) ([]Hit, []extent.Gap, bool) {
	if length <= 0 {
		return hits, gaps, true
	}
	fe := s.viewExtents(file)
	if fe == nil {
		fe = emptyFileExtents
	} else if fe.spilled {
		return hits, gaps, false
	}
	end := off + length
	pos := off
	for i := firstEnding(fe.ents, off); i < len(fe.ents); i++ {
		e := fe.ents[i]
		eOff, eEnd := e.off, e.off+int64(e.len)
		if eOff >= end {
			break
		}
		if eOff > pos {
			gaps = append(gaps, extent.Gap{Off: pos, Len: eOff - pos})
			pos = eOff
		}
		lo, hi := eOff, eEnd
		cacheOff, dirty := unpackMapping(e.val)
		if lo < off {
			cacheOff += off - lo
			lo = off
		}
		if hi > end {
			hi = end
		}
		hits = append(hits, Hit{Off: lo, Len: hi - lo, CacheOff: cacheOff, Dirty: dirty})
		pos = hi
	}
	if pos < end {
		gaps = append(gaps, extent.Gap{Off: pos, Len: end - pos})
	}
	return hits, gaps, true
}

// ViewMappedAt reports whether the published view still maps
// [off, off+length) of file contiguously to cacheOff — the post-pin
// revalidation of the lock-free read path. A spilled view reports false
// (conservative: the caller re-validates through the locking path).
// Lock-free and allocation-free.
func (s *Striped) ViewMappedAt(file string, off, length, cacheOff int64) bool {
	if length <= 0 {
		return true
	}
	fe := s.viewExtents(file)
	if fe == nil {
		fe = emptyFileExtents
	} else if fe.spilled {
		return false
	}
	end := off + length
	pos, want := off, cacheOff
	for i := firstEnding(fe.ents, off); i < len(fe.ents) && pos < end; i++ {
		e := fe.ents[i]
		eOff, eEnd := e.off, e.off+int64(e.len)
		if eOff > pos {
			return false
		}
		eCacheOff, _ := unpackMapping(e.val)
		if co := eCacheOff + (pos - eOff); co != want {
			return false
		}
		adv := eEnd - pos
		if pos+adv > end {
			adv = end - pos
		}
		pos += adv
		want += adv
	}
	return pos >= end
}

// ViewContains reports whether the published view fully maps the range.
// A spilled view reports false. Lock-free and allocation-free.
func (s *Striped) ViewContains(file string, off, length int64) bool {
	if length <= 0 {
		return true
	}
	fe := s.viewExtents(file)
	if fe == nil {
		fe = emptyFileExtents
	} else if fe.spilled {
		return false
	}
	end := off + length
	pos := off
	for i := firstEnding(fe.ents, off); i < len(fe.ents) && pos < end; i++ {
		e := fe.ents[i]
		if e.off > pos {
			return false
		}
		if eEnd := e.off + int64(e.len); eEnd > pos {
			pos = eEnd
		}
	}
	return pos >= end
}

// View accounting: per-file publication costs, sized against measured
// heap deltas. Every id in the slot array pays a pointer plus its
// fileSlot allocation. A resident file adds its fileExtents object and
// packed entries; empty and spilled files share the sentinels and add
// nothing — which is what lets a MetaBudget shrink the view layer along
// with the slab.
const (
	viewSlotBytes   = 8 + 16 // slot-array pointer + fileSlot
	viewHeaderBytes = 32     // fileExtents (slice header + flag, padded)
	viewEntryBytes  = int64(unsafe.Sizeof(viewExt{}))
)

// ViewBytes measures the published epoch-view layer — the resident price
// of the lock-free read path, reported alongside MemoryBytes (live
// table) and the shared arena. O(published files): bench accounting,
// not a hot path.
func (s *Striped) ViewBytes() int64 {
	arr := *s.slots.Load()
	n := int64(len(arr)) * viewSlotBytes
	for _, slot := range arr {
		fe := slot.ext.Load()
		if fe == nil || fe == emptyFileExtents || fe == spilledFileExtents {
			continue
		}
		n += viewHeaderBytes + int64(len(fe.ents))*viewEntryBytes
	}
	return n
}

// StripeVersion returns the publication counter of file's stripe. It
// increments after every published mutation of any file in the stripe —
// the version oracle of the epoch-read property tests.
func (s *Striped) StripeVersion(file string) uint64 {
	return s.stripes[stripeIndex(file)].version.Load()
}
