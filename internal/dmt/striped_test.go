package dmt

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"s4dcache/internal/kvstore"
)

// stripedOp is one scripted mutation for the equivalence tests.
type stripedOp struct {
	kind     byte // 0 insert, 1 delete, 2 setdirty, 3 setclean
	file     string
	off, n   int64
	cacheOff int64
	dirty    bool
}

func stripedScript(files, ops int, seed int64) []stripedOp {
	rng := rand.New(rand.NewSource(seed))
	out := make([]stripedOp, 0, ops)
	for i := 0; i < ops; i++ {
		op := stripedOp{
			kind:     byte(rng.Intn(4)),
			file:     fmt.Sprintf("/bench/f%03d", rng.Intn(files)),
			off:      int64(rng.Intn(1 << 16)),
			n:        int64(1 + rng.Intn(1<<12)),
			cacheOff: int64(rng.Intn(1 << 20)),
			dirty:    rng.Intn(2) == 0,
		}
		out = append(out, op)
	}
	return out
}

func applyScript(t *testing.T, apply func(stripedOp) error, script []stripedOp) {
	t.Helper()
	for _, op := range script {
		if err := apply(op); err != nil {
			t.Fatal(err)
		}
	}
}

func tableApply(tb *Table) func(stripedOp) error {
	return func(op stripedOp) error {
		switch op.kind {
		case 0:
			return tb.Insert(op.file, op.off, op.n, op.cacheOff, op.dirty)
		case 1:
			return tb.Delete(op.file, op.off, op.n)
		case 2:
			return tb.SetDirty(op.file, op.off, op.n)
		default:
			return tb.SetClean(op.file, op.off, op.n)
		}
	}
}

func stripedApply(st *Striped) func(stripedOp) error {
	return func(op stripedOp) error {
		switch op.kind {
		case 0:
			return st.Insert(op.file, op.off, op.n, op.cacheOff, op.dirty)
		case 1:
			return st.Delete(op.file, op.off, op.n)
		case 2:
			return st.SetDirty(op.file, op.off, op.n)
		default:
			return st.SetClean(op.file, op.off, op.n)
		}
	}
}

// expectSameState asserts the plain and striped tables agree on aggregate
// counters and on every per-file lookup over the probed ranges.
func expectSameState(t *testing.T, want *Table, got *Striped, files int) {
	t.Helper()
	if w, g := want.Entries(), got.Entries(); w != g {
		t.Fatalf("entries: plain %d, striped %d", w, g)
	}
	if w, g := want.Bytes(), got.Bytes(); w != g {
		t.Fatalf("bytes: plain %d, striped %d", w, g)
	}
	for i := 0; i < files; i++ {
		file := fmt.Sprintf("/bench/f%03d", i)
		wh, wg := want.Lookup(file, 0, 1<<21)
		gh, gg := got.Lookup(file, 0, 1<<21)
		if len(wh) != len(gh) || len(wg) != len(gg) {
			t.Fatalf("%s: plain %d hits/%d gaps, striped %d hits/%d gaps",
				file, len(wh), len(wg), len(gh), len(gg))
		}
		for j := range wh {
			if wh[j] != gh[j] {
				t.Fatalf("%s hit %d: plain %+v, striped %+v", file, j, wh[j], gh[j])
			}
		}
		for j := range wg {
			if wg[j] != gg[j] {
				t.Fatalf("%s gap %d: plain %+v, striped %+v", file, j, wg[j], gg[j])
			}
		}
	}
}

// TestStripedMatchesTable drives an identical mutation script through a
// plain Table and a Striped table and requires identical mapped state:
// striping must be invisible to per-file semantics.
func TestStripedMatchesTable(t *testing.T) {
	const files = 24
	script := stripedScript(files, 800, 11)
	plain := New()
	striped := NewStriped()
	applyScript(t, tableApply(plain), script)
	applyScript(t, stripedApply(striped), script)
	expectSameState(t, plain, striped, files)
}

// TestStripedLogInteroperates proves the striped table writes the same
// log format the plain table reads, and vice versa: a log produced by
// one reopens byte-for-extent identical through the other.
func TestStripedLogInteroperates(t *testing.T) {
	const files = 16
	script := stripedScript(files, 500, 23)

	// Striped writes, plain reopens.
	backend := kvstore.NewMemBackend()
	st, err := kvstore.Open(backend, "dmt", kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	striped, err := OpenStriped(st)
	if err != nil {
		t.Fatal(err)
	}
	applyScript(t, stripedApply(striped), script)
	st2, err := kvstore.Open(backend, "dmt", kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Open(st2)
	if err != nil {
		t.Fatal(err)
	}
	expectSameState(t, plain, striped, files)

	// Plain writes, striped reopens — including after a striped Compact.
	backend2 := kvstore.NewMemBackend()
	st3, err := kvstore.Open(backend2, "dmt", kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain2, err := Open(st3)
	if err != nil {
		t.Fatal(err)
	}
	applyScript(t, tableApply(plain2), script)
	st4, err := kvstore.Open(backend2, "dmt", kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	striped2, err := OpenStriped(st4)
	if err != nil {
		t.Fatal(err)
	}
	expectSameState(t, plain2, striped2, files)
	if err := striped2.Compact(); err != nil {
		t.Fatal(err)
	}
	st5, err := kvstore.Open(backend2, "dmt", kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	striped3, err := OpenStriped(st5)
	if err != nil {
		t.Fatal(err)
	}
	expectSameState(t, plain2, striped3, files)
}

// TestStripedConcurrent hammers one persistent striped table from
// concurrent goroutines on disjoint file sets (so expected state is
// computable), with a concurrent Compact thrown in, then verifies the
// live state equals a sequential replay and the persisted log recovers
// it exactly. Under -race this is the data-race gate for the striped DMT
// feeding the store's group committer.
func TestStripedConcurrent(t *testing.T) {
	backend := kvstore.NewMemBackend()
	st, err := kvstore.Open(backend, "dmt", kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	striped, err := OpenStriped(st)
	if err != nil {
		t.Fatal(err)
	}

	const (
		workers = 8
		perFile = 4 // files per worker
		ops     = 150
	)
	scripts := make([][]stripedOp, workers)
	for g := range scripts {
		rng := rand.New(rand.NewSource(int64(100 + g)))
		for i := 0; i < ops; i++ {
			op := stripedOp{
				kind:     byte(rng.Intn(4)),
				file:     fmt.Sprintf("/w%d/f%d", g, rng.Intn(perFile)),
				off:      int64(rng.Intn(1 << 14)),
				n:        int64(1 + rng.Intn(1<<10)),
				cacheOff: int64(rng.Intn(1 << 18)),
				dirty:    rng.Intn(2) == 0,
			}
			scripts[g] = append(scripts[g], op)
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			apply := stripedApply(striped)
			for i, op := range scripts[g] {
				if err := apply(op); err != nil {
					t.Error(err)
					return
				}
				if i%40 == 39 {
					// Batched fragments exercise the atomic insert path.
					if err := striped.InsertBatch(op.file, []FragmentInsert{
						{Off: op.off, Length: 64, CacheOff: op.cacheOff},
						{Off: op.off + 64, Length: 64, CacheOff: op.cacheOff + 64, Dirty: true},
					}); err != nil {
						t.Error(err)
						return
					}
				}
				striped.Lookup(op.file, 0, 1<<15)
				striped.Contains(op.file, op.off, op.n)
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Sequential oracle: the same per-worker scripts applied to plain
	// tables, one per worker (disjoint file sets make this exact).
	for g := 0; g < workers; g++ {
		oracle := New()
		apply := tableApply(oracle)
		for i, op := range scripts[g] {
			if err := apply(op); err != nil {
				t.Fatal(err)
			}
			if i%40 == 39 {
				if err := oracle.InsertBatch(op.file, []FragmentInsert{
					{Off: op.off, Length: 64, CacheOff: op.cacheOff},
					{Off: op.off + 64, Length: 64, CacheOff: op.cacheOff + 64, Dirty: true},
				}); err != nil {
					t.Fatal(err)
				}
			}
		}
		for f := 0; f < perFile; f++ {
			file := fmt.Sprintf("/w%d/f%d", g, f)
			wh, _ := oracle.Lookup(file, 0, 1<<20)
			gh, _ := striped.Lookup(file, 0, 1<<20)
			if len(wh) != len(gh) {
				t.Fatalf("%s: oracle %d hits, striped %d", file, len(wh), len(gh))
			}
			for j := range wh {
				if wh[j] != gh[j] {
					t.Fatalf("%s hit %d: oracle %+v, striped %+v", file, j, wh[j], gh[j])
				}
			}
		}
	}

	// Recovery: reopen the persisted log and compare to the live table.
	stR, err := kvstore.Open(backend, "dmt", kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := OpenStriped(stR)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Entries() != striped.Entries() || recovered.Bytes() != striped.Bytes() {
		t.Fatalf("recovered %d entries/%d bytes, live %d/%d",
			recovered.Entries(), recovered.Bytes(), striped.Entries(), striped.Bytes())
	}
	for g := 0; g < workers; g++ {
		for f := 0; f < perFile; f++ {
			file := fmt.Sprintf("/w%d/f%d", g, f)
			wh, _ := striped.Lookup(file, 0, 1<<20)
			gh, _ := recovered.Lookup(file, 0, 1<<20)
			if len(wh) != len(gh) {
				t.Fatalf("%s: live %d hits, recovered %d", file, len(wh), len(gh))
			}
			for j := range wh {
				if wh[j] != gh[j] {
					t.Fatalf("%s hit %d: live %+v, recovered %+v", file, j, wh[j], gh[j])
				}
			}
		}
	}
}
