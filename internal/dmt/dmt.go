// Package dmt implements the Data Mapping Table (paper §III.D, Fig. 5
// right): for every cached range it records where the data lives in the
// cache file on the CServers (C_file/C_offset) and whether it is dirty
// (D_flag). The table is an interval map per original file, with an
// optional persistent operation log in a kvstore.Store — the Berkeley DB
// file of the paper's implementation (§IV.A) — replayed on open so that
// mappings survive crashes.
package dmt

import (
	"encoding/binary"
	"fmt"

	"s4dcache/internal/extent"
	"s4dcache/internal/kvstore"
)

// EntryBytes is the persistent size the paper assumes per DMT entry
// (six 4-byte fields, §V.E.1), used by the metadata-overhead experiment.
const EntryBytes = 24

// Mapping is the payload of one mapped extent.
type Mapping struct {
	// CacheOff is the byte offset in the cache file (C_offset).
	CacheOff int64
	// Dirty is the D_flag: the cache holds newer data than the DServers.
	Dirty bool
}

// Hit is a mapped subrange of a lookup, clipped to the query range.
type Hit struct {
	// File is the original file (set by DirtyExtents; Lookup callers
	// already know it).
	File string
	// Off and Len locate the subrange in the original file.
	Off, Len int64
	// CacheOff is where the subrange starts in the cache file.
	CacheOff int64
	// Dirty is the subrange's D_flag.
	Dirty bool
}

// Table is the Data Mapping Table. Use New or Open.
type Table struct {
	files map[string]*extent.Map[Mapping]
	// names lists the files in first-mapped order. Cross-file scans
	// (DirtyExtents, CleanExtents, Compact) follow it instead of the map,
	// so the Rebuilder's flush order — and with it the whole simulated
	// I/O schedule — is deterministic across runs.
	names []string
	store *kvstore.Store
	seq   uint64
	// nextSeq, when set, supplies persist-log sequence numbers instead of
	// the local seq counter. The striped table injects a shared atomic here
	// so sub-tables writing to one store never collide on log keys. Nil —
	// the default — keeps the original single-table numbering exactly.
	nextSeq func() uint64

	// ov and sdHits are reusable scratch buffers for the lookup and
	// set-dirty hot paths. Neither is live across any call that could
	// re-enter the table, so single buffers suffice.
	ov     []extent.Entry[Mapping]
	sdHits []Hit

	// dirtyBytes tracks the mapped bytes whose D_flag is set, maintained
	// incrementally by apply so HasDirty is O(1): the Rebuilder polls it
	// every period and must not walk (or allocate) per poll.
	dirtyBytes int64

	inserts, deletes uint64
}

// New returns a memory-only table (no persistence).
func New() *Table {
	return &Table{files: make(map[string]*extent.Map[Mapping])}
}

// Open returns a table persisted as an operation log in store, replaying
// any existing log. Every mutation is written through before the in-memory
// state changes, as the paper requires for power-failure safety.
func Open(store *kvstore.Store) (*Table, error) {
	if store == nil {
		return nil, fmt.Errorf("dmt: store is required")
	}
	t := New()
	t.store = store
	// Continue the sequence after the highest logged op (ReplayLog's max).
	seq, err := ReplayLog(store, func(file string, off, length, cacheOff int64, dirty, insert bool) {
		kind := kindInsert
		if !insert {
			kind = kindDelete
		}
		t.apply(logOp{kind: kind, file: file, off: off, length: length, cacheOff: cacheOff, dirty: dirty})
	})
	if err != nil {
		return nil, err
	}
	t.seq = seq
	return t, nil
}

// Insert maps [off, off+length) of file to cacheOff in the cache file,
// overwriting any previous mapping of the range.
func (t *Table) Insert(file string, off, length, cacheOff int64, dirty bool) error {
	if length <= 0 {
		return nil
	}
	op := logOp{kind: kindInsert, file: file, off: off, length: length, cacheOff: cacheOff, dirty: dirty}
	if err := t.persist(op); err != nil {
		return err
	}
	t.apply(op)
	return nil
}

// FragmentInsert is one mapping of a batched insert.
type FragmentInsert struct {
	// Off and Length locate the fragment in the original file.
	Off, Length int64
	// CacheOff is the fragment's cache file location.
	CacheOff int64
	// Dirty is the initial D_flag.
	Dirty bool
}

// InsertBatch maps several fragments of one file atomically: with a
// persistent store, either all fragments survive a crash or none do (the
// fragments of one admitted request must not be torn apart). Memory-only
// tables apply the fragments directly.
func (t *Table) InsertBatch(file string, frags []FragmentInsert) error {
	if len(frags) == 0 {
		return nil
	}
	ops := make([]logOp, 0, len(frags))
	for _, fr := range frags {
		if fr.Length <= 0 {
			continue
		}
		ops = append(ops, logOp{
			kind: kindInsert, file: file,
			off: fr.Off, length: fr.Length, cacheOff: fr.CacheOff, dirty: fr.Dirty,
		})
	}
	if len(ops) == 0 {
		return nil
	}
	if t.store != nil {
		batch := t.store.NewBatch()
		for _, op := range ops {
			batch.Put(fmt.Sprintf(opPrefix+"%020d", t.nextSeqNum()), encodeOp(op))
		}
		if err := batch.Commit(); err != nil {
			return fmt.Errorf("dmt: batch insert: %w", err)
		}
	}
	for _, op := range ops {
		t.apply(op)
	}
	return nil
}

// Delete removes mappings covering [off, off+length).
func (t *Table) Delete(file string, off, length int64) error {
	if length <= 0 {
		return nil
	}
	op := logOp{kind: kindDelete, file: file, off: off, length: length}
	if err := t.persist(op); err != nil {
		return err
	}
	t.apply(op)
	return nil
}

// SetClean clears the D_flag of every mapped subrange of
// [off, off+length) — the Rebuilder calls this after writing dirty data
// back to the DServers (§III.F).
func (t *Table) SetClean(file string, off, length int64) error {
	return t.setDirty(file, off, length, false)
}

// SetDirty sets the D_flag of every mapped subrange of [off, off+length) —
// a write served by the cache makes the cached copy newer than the
// DServers (Algorithm 1, line 22 followed by the write).
func (t *Table) SetDirty(file string, off, length int64) error {
	return t.setDirty(file, off, length, true)
}

func (t *Table) setDirty(file string, off, length int64, dirty bool) error {
	m, ok := t.files[file]
	if !ok {
		return nil
	}
	t.sdHits = t.appendClipped(t.sdHits[:0], m, off, length)
	hits := t.sdHits
	for _, h := range hits {
		if h.Dirty == dirty {
			continue
		}
		if err := t.Insert(file, h.Off, h.Len, h.CacheOff, dirty); err != nil {
			return err
		}
	}
	return nil
}

// Lookup splits [off, off+length) of file into mapped subranges (clipped,
// in order) and unmapped gaps.
func (t *Table) Lookup(file string, off, length int64) (hits []Hit, gaps []extent.Gap) {
	return t.AppendLookup(nil, nil, file, off, length)
}

// AppendLookup is Lookup appending into caller-supplied buffers, returning
// the extended slices. The serve path in internal/core reuses one pair of
// buffers per request, eliminating two allocations per intercepted I/O.
func (t *Table) AppendLookup(hits []Hit, gaps []extent.Gap, file string, off, length int64) ([]Hit, []extent.Gap) {
	m, ok := t.files[file]
	if !ok {
		if length > 0 {
			gaps = append(gaps, extent.Gap{Off: off, Len: length})
		}
		return hits, gaps
	}
	return t.appendClipped(hits, m, off, length), m.AppendGaps(gaps, off, length)
}

// Contains reports whether the full range is mapped.
func (t *Table) Contains(file string, off, length int64) bool {
	m, ok := t.files[file]
	if !ok {
		return false
	}
	return m.Covered(off, length)
}

// FileMapped reports whether any range of file is currently mapped. Core
// uses it to prune per-file bookkeeping (write epochs) once a file's cache
// residency is fully gone.
func (t *Table) FileMapped(file string) bool {
	m, ok := t.files[file]
	return ok && m.Len() > 0
}

// DirtyExtents returns up to max dirty mapped ranges across all files
// (all if max <= 0), each with File set.
func (t *Table) DirtyExtents(max int) []Hit {
	var out []Hit
	for _, file := range t.names {
		m := t.files[file]
		m.Walk(func(e extent.Entry[Mapping]) bool {
			if e.Val.Dirty {
				out = append(out, Hit{File: file, Off: e.Off, Len: e.Len, CacheOff: e.Val.CacheOff, Dirty: true})
				if max > 0 && len(out) >= max {
					return false
				}
			}
			return true
		})
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

// CleanExtents returns up to max clean mapped ranges (all if max <= 0),
// candidates for space reclamation.
func (t *Table) CleanExtents(max int) []Hit {
	var out []Hit
	for _, file := range t.names {
		m := t.files[file]
		m.Walk(func(e extent.Entry[Mapping]) bool {
			if !e.Val.Dirty {
				out = append(out, Hit{File: file, Off: e.Off, Len: e.Len, CacheOff: e.Val.CacheOff})
				if max > 0 && len(out) >= max {
					return false
				}
			}
			return true
		})
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}

// Entries returns the total mapped extent count.
func (t *Table) Entries() int {
	n := 0
	for _, m := range t.files {
		n += m.Len()
	}
	return n
}

// Bytes returns the total mapped byte count.
func (t *Table) Bytes() int64 {
	var n int64
	for _, m := range t.files {
		n += m.Bytes()
	}
	return n
}

// DirtyBytes returns the mapped bytes whose D_flag is set, maintained
// incrementally (O(1), no walk).
func (t *Table) DirtyBytes() int64 { return t.dirtyBytes }

// HasDirty reports whether any mapped range is dirty, in O(1) and without
// allocating — the Rebuilder's poll predicate.
func (t *Table) HasDirty() bool { return t.dirtyBytes > 0 }

// MetadataBytes estimates the persistent size of the table at the paper's
// 24 bytes per entry (§V.E.1).
func (t *Table) MetadataBytes() int64 { return int64(t.Entries()) * EntryBytes }

// Compact rewrites the persistent log as one insert per live extent,
// bounding recovery time. A memory-only table compacts trivially.
func (t *Table) Compact() error {
	if t.store == nil {
		return nil
	}
	for _, k := range t.store.Keys(opPrefix) {
		if err := t.store.Delete(k); err != nil {
			return fmt.Errorf("dmt: compact: %w", err)
		}
	}
	t.seq = 0
	for _, file := range t.names {
		m := t.files[file]
		var walkErr error
		m.Walk(func(e extent.Entry[Mapping]) bool {
			op := logOp{kind: kindInsert, file: file, off: e.Off, length: e.Len, cacheOff: e.Val.CacheOff, dirty: e.Val.Dirty}
			if err := t.persist(op); err != nil {
				walkErr = err
				return false
			}
			return true
		})
		if walkErr != nil {
			return walkErr
		}
	}
	return t.store.Compact()
}

// Stats reports table activity.
type Stats struct {
	Inserts, Deletes uint64
	Entries          int
	Bytes            int64
}

// Stats returns a snapshot of activity counters.
func (t *Table) Stats() Stats {
	return Stats{Inserts: t.inserts, Deletes: t.deletes, Entries: t.Entries(), Bytes: t.Bytes()}
}

func (t *Table) apply(op logOp) {
	m, ok := t.files[op.file]
	if !ok {
		m = extent.New[Mapping](func(v Mapping, delta int64) Mapping {
			return Mapping{CacheOff: v.CacheOff + delta, Dirty: v.Dirty}
		})
		t.files[op.file] = m
		t.names = append(t.names, op.file)
	}
	switch op.kind {
	case kindInsert:
		t.inserts++
		t.dirtyBytes -= t.dirtyOverlapBytes(m, op.off, op.length)
		m.Insert(op.off, op.length, Mapping{CacheOff: op.cacheOff, Dirty: op.dirty})
		if op.dirty {
			t.dirtyBytes += op.length
		}
	case kindDelete:
		t.deletes++
		t.dirtyBytes -= t.dirtyOverlapBytes(m, op.off, op.length)
		m.Delete(op.off, op.length)
	}
}

// dirtyOverlapBytes returns how many dirty mapped bytes of m fall inside
// [off, off+length), clipped. It reuses t.ov, which every caller has
// released by the time apply runs.
func (t *Table) dirtyOverlapBytes(m *extent.Map[Mapping], off, length int64) int64 {
	var n int64
	end := off + length
	t.ov = m.AppendOverlaps(t.ov[:0], off, length)
	for _, e := range t.ov {
		if !e.Val.Dirty {
			continue
		}
		lo, hi := e.Off, e.End()
		if lo < off {
			lo = off
		}
		if hi > end {
			hi = end
		}
		n += hi - lo
	}
	return n
}

// nextSeqNum returns the next persist-log sequence number: the injected
// shared counter when striped, the table-local counter otherwise.
func (t *Table) nextSeqNum() uint64 {
	if t.nextSeq != nil {
		return t.nextSeq()
	}
	t.seq++
	return t.seq
}

func (t *Table) persist(op logOp) error {
	if t.store == nil {
		return nil
	}
	key := fmt.Sprintf(opPrefix+"%020d", t.nextSeqNum())
	if err := t.store.Put(key, encodeOp(op)); err != nil {
		return fmt.Errorf("dmt: persist: %w", err)
	}
	return nil
}

// appendClipped appends the mapped subranges of [off, off+length) to dst,
// clipped to the query range. The overlap scan reuses t.ov, which is free
// again by return (the loop makes no calls back into the table).
func (t *Table) appendClipped(dst []Hit, m *extent.Map[Mapping], off, length int64) []Hit {
	end := off + length
	t.ov = m.AppendOverlaps(t.ov[:0], off, length)
	for _, e := range t.ov {
		lo, hi := e.Off, e.End()
		cacheOff := e.Val.CacheOff
		if lo < off {
			cacheOff += off - lo
			lo = off
		}
		if hi > end {
			hi = end
		}
		dst = append(dst, Hit{Off: lo, Len: hi - lo, CacheOff: cacheOff, Dirty: e.Val.Dirty})
	}
	return dst
}

const opPrefix = "dmtop|"

const (
	kindInsert byte = 1
	kindDelete byte = 2
)

type logOp struct {
	kind     byte
	file     string
	off      int64
	length   int64
	cacheOff int64
	dirty    bool
}

func encodeOp(op logOp) []byte {
	buf := make([]byte, 0, 1+4+len(op.file)+8+8+8+1)
	buf = append(buf, op.kind)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(op.file)))
	buf = append(buf, op.file...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(op.off))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(op.length))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(op.cacheOff))
	var dirty byte
	if op.dirty {
		dirty = 1
	}
	buf = append(buf, dirty)
	return buf
}

func decodeOp(data []byte) (logOp, error) {
	var op logOp
	if len(data) < 1+4 {
		return op, fmt.Errorf("dmt: short op record (%d bytes)", len(data))
	}
	op.kind = data[0]
	if op.kind != kindInsert && op.kind != kindDelete {
		return op, fmt.Errorf("dmt: bad op kind %d", op.kind)
	}
	fileLen := int(binary.LittleEndian.Uint32(data[1:]))
	pos := 5
	if len(data) < pos+fileLen+8+8+8+1 {
		return op, fmt.Errorf("dmt: truncated op record")
	}
	op.file = string(data[pos : pos+fileLen])
	pos += fileLen
	op.off = int64(binary.LittleEndian.Uint64(data[pos:]))
	pos += 8
	op.length = int64(binary.LittleEndian.Uint64(data[pos:]))
	pos += 8
	op.cacheOff = int64(binary.LittleEndian.Uint64(data[pos:]))
	pos += 8
	op.dirty = data[pos] == 1
	return op, nil
}
