// Package dmt implements the Data Mapping Table (paper §III.D, Fig. 5
// right): for every cached range it records where the data lives in the
// cache file on the CServers (C_file/C_offset) and whether it is dirty
// (D_flag). The table is an interval map per original file, with an
// optional persistent operation log in a kvstore.Store — the Berkeley DB
// file of the paper's implementation (§IV.A) — replayed on open so that
// mappings survive crashes.
//
// Storage layout (the million-file metadata plane): file names intern
// into a shared names.Arena and every per-file structure is addressed by
// the dense arena id — no map[string] keys, no duplicated name strings.
// Extents pack into an extent.Slab (struct-of-arrays, 20 bytes/extent);
// each file holds only a 16-byte segment handle inside a 48-byte
// fileState. On top of that sits the resident-metadata budget: when the
// packed extent bytes exceed MetaBudget, cold clean files (second-chance
// clock over per-file touch bits) are sealed into per-file baseline
// records (staterec.KindFileMap) in the store and dropped from memory; a
// lookup that misses residency faults the record back in synchronously.
// Baseline records double as incremental log compaction: each carries
// the op-log sequence it supersedes, and replay skips the file's ops at
// or below it.
package dmt

import (
	"fmt"

	"s4dcache/internal/extent"
	"s4dcache/internal/kvstore"
	"s4dcache/internal/names"
	"s4dcache/internal/staterec"
)

// EntryBytes is the persistent size the paper assumes per DMT entry
// (six 4-byte fields, §V.E.1). Kept as the paper's comparison constant;
// the measured in-memory cost comes from ResidentBytes/MemoryBytes.
const EntryBytes = 24

// Mapping is the payload of one mapped extent.
type Mapping struct {
	// CacheOff is the byte offset in the cache file (C_offset).
	CacheOff int64
	// Dirty is the D_flag: the cache holds newer data than the DServers.
	Dirty bool
}

// Hit is a mapped subrange of a lookup, clipped to the query range.
type Hit struct {
	// File is the original file (set by DirtyExtents; Lookup callers
	// already know it).
	File string
	// Off and Len locate the subrange in the original file.
	Off, Len int64
	// CacheOff is where the subrange starts in the cache file.
	CacheOff int64
	// Dirty is the subrange's D_flag.
	Dirty bool
}

// packMapping encodes a Mapping into the slab's uint64 payload:
// cache offset shifted up one bit, D_flag in bit 0.
func packMapping(cacheOff int64, dirty bool) uint64 {
	v := uint64(cacheOff) << 1
	if dirty {
		v |= 1
	}
	return v
}

func unpackMapping(v uint64) (cacheOff int64, dirty bool) {
	return int64(v >> 1), v&1 == 1
}

// splitMapping advances the packed cache offset by the split delta,
// preserving the D_flag bit.
func splitMapping(v uint64, delta int64) uint64 { return v + uint64(delta)<<1 }

// File residency states.
const (
	// fsResident: extents live in the slab segment. The zero fileState
	// is an empty resident file.
	fsResident uint8 = iota
	// fsSpilled: extents live only in the file's sealed baseline record
	// in the store; spillN caches the extent count.
	fsSpilled
)

// clearLen is the delete-op length that tombstones a whole file — used
// when a quarantined baseline must not let stale log ops resurrect.
const clearLen = int64(1) << 62

// fileState is the per-file header: 48 bytes, slice-addressed by slot.
type fileState struct {
	id      uint32 // arena name id
	state   uint8
	clock   uint8 // second-chance bit: set on touch, cleared by the sweep
	churned uint8 // log ops since last baseline (Compact skips clean files)
	_       uint8
	seg     extent.Seg
	spillN  uint32 // extent count while spilled
	_       uint32
	bytes   int64 // mapped bytes of the file
	dirty   int64 // mapped bytes with D_flag set
}

// fileStateBytes is the accounted per-file overhead: the fileState
// itself plus its idx map entry and order slot.
const fileStateBytes = 48 + 16 + 4

// config collects construction options shared by Table and Striped.
type config struct {
	arena     *names.Arena
	budget    int64
	spillRead func(name string, data []byte) []byte
	faultIO   func(extents int)
}

// Option configures New/Open and their striped/persisted variants.
type Option func(*config)

// WithArena shares a file-name interning arena with other tables (the
// CDT, the core's per-file bookkeeping). Default: a private arena.
func WithArena(a *names.Arena) Option { return func(c *config) { c.arena = a } }

// WithMetaBudget bounds the resident packed-extent bytes; cold clean
// files spill to sealed store records beyond it. <= 0 (the default)
// keeps everything resident. Requires a store to take effect.
func WithMetaBudget(n int64) Option { return func(c *config) { c.budget = n } }

// WithSpillRead installs a read-back hook applied to baseline record
// bytes on fault-in — the fault injector's corruption point for spilled
// metadata.
func WithSpillRead(fn func(name string, data []byte) []byte) Option {
	return func(c *config) { c.spillRead = fn }
}

// WithFaultIO installs a hook called with the extent count of every
// fault-in — the simulator core charges the modeled CPFS read there.
func WithFaultIO(fn func(extents int)) Option { return func(c *config) { c.faultIO = fn } }

// Table is the Data Mapping Table. Use New or Open.
type Table struct {
	arena *names.Arena
	slab  *extent.Slab
	idx   map[uint32]int32 // arena id -> slot in files
	files []fileState
	// order lists file slots in first-mapped order. Cross-file scans
	// (DirtyExtents, CleanExtents, Compact) and the spill clock follow
	// it instead of any map, so the Rebuilder's flush order — and with
	// it the whole simulated I/O schedule — is deterministic across runs.
	order []int32
	hand  int // clock hand into order

	store *kvstore.Store
	seq   uint64
	// nextSeq, when set, supplies persist-log sequence numbers instead of
	// the local seq counter. The striped table injects a shared atomic here
	// so sub-tables writing to one store never collide on log keys. Nil —
	// the default — keeps the original single-table numbering exactly.
	nextSeq func() uint64
	// lastSeq, when set, reads the current shared sequence (striped);
	// nil reads the local counter. Baseline records stamp it as the
	// sequence they supersede.
	lastSeq func() uint64

	budget     int64
	spillRead  func(name string, data []byte) []byte
	faultIO    func(extents int)
	onResident func(name string) // striped epoch-view republish hook

	// sdHits is the reusable scratch of the set-dirty path. Not live
	// across any call that could re-enter the table.
	sdHits []Hit

	residentBytes int64 // packed extent bytes currently in the slab
	mappedBytes   int64
	// dirtyBytes tracks the mapped bytes whose D_flag is set, maintained
	// incrementally by apply so HasDirty is O(1): the Rebuilder polls it
	// every period and must not walk (or allocate) per poll.
	dirtyBytes int64

	inserts, deletes uint64
	spills, faultIns uint64
	spillQuarantined uint64
	spillSkipped     uint64
	spilledFiles     int
}

// New returns a memory-only table (no persistence).
func New(opts ...Option) *Table {
	var c config
	for _, o := range opts {
		o(&c)
	}
	return newTable(c)
}

func newTable(c config) *Table {
	if c.arena == nil {
		c.arena = names.NewArena()
	}
	return &Table{
		arena:     c.arena,
		slab:      extent.NewSlab(),
		idx:       make(map[uint32]int32),
		budget:    c.budget,
		spillRead: c.spillRead,
		faultIO:   c.faultIO,
	}
}

// Open returns a table persisted in store, replaying any existing
// baseline records and operation log. Every mutation is written through
// before the in-memory state changes, as the paper requires for
// power-failure safety. Baselines of clean files install spilled (no
// extents decoded) and fault in on first touch; the budget sweep runs
// once after replay.
func Open(store *kvstore.Store, opts ...Option) (*Table, error) {
	if store == nil {
		return nil, fmt.Errorf("dmt: store is required")
	}
	t := New(opts...)
	t.store = store
	maxSeq, _, err := walkState(store,
		func(name string, h staterec.FileMapHeader, total, dirty int64, data []byte) {
			t.installBaseline(name, h, total, dirty, data)
		},
		func(op logOp) { t.apply(op) },
	)
	if err != nil {
		return nil, err
	}
	t.seq = maxSeq
	t.enforceBudget(-1)
	return t, nil
}

// Arena returns the table's name-interning arena.
func (t *Table) Arena() *names.Arena { return t.arena }

// SetMetaBudget adjusts the resident budget live (<= 0 unbounded) and
// runs the spill sweep immediately.
func (t *Table) SetMetaBudget(n int64) {
	t.budget = n
	t.enforceBudget(-1)
}

// MetaBudget returns the resident budget (<= 0 means unbounded).
func (t *Table) MetaBudget() int64 { return t.budget }

// lookupSlot resolves file to its slot without interning: -1 if the
// table has never mapped it. Allocation-free.
func (t *Table) lookupSlot(file string) int32 {
	id, ok := t.arena.Lookup(file)
	if !ok {
		return -1
	}
	si, ok := t.idx[id]
	if !ok {
		return -1
	}
	return si
}

// ensureSlot interns file and returns its slot, creating the fileState
// on first touch.
func (t *Table) ensureSlot(file string) int32 {
	id := t.arena.Intern(file)
	if si, ok := t.idx[id]; ok {
		return si
	}
	si := int32(len(t.files))
	t.files = append(t.files, fileState{id: id})
	t.idx[id] = si
	t.order = append(t.order, si)
	return si
}

// Insert maps [off, off+length) of file to cacheOff in the cache file,
// overwriting any previous mapping of the range.
func (t *Table) Insert(file string, off, length, cacheOff int64, dirty bool) error {
	if length <= 0 {
		return nil
	}
	op := logOp{kind: kindInsert, file: file, off: off, length: length, cacheOff: cacheOff, dirty: dirty}
	if err := t.persist(op); err != nil {
		return err
	}
	t.apply(op)
	t.enforceBudget(-1)
	return nil
}

// FragmentInsert is one mapping of a batched insert.
type FragmentInsert struct {
	// Off and Length locate the fragment in the original file.
	Off, Length int64
	// CacheOff is the fragment's cache file location.
	CacheOff int64
	// Dirty is the initial D_flag.
	Dirty bool
}

// InsertBatch maps several fragments of one file atomically: with a
// persistent store, either all fragments survive a crash or none do (the
// fragments of one admitted request must not be torn apart). Memory-only
// tables apply the fragments directly.
func (t *Table) InsertBatch(file string, frags []FragmentInsert) error {
	if len(frags) == 0 {
		return nil
	}
	ops := make([]logOp, 0, len(frags))
	for _, fr := range frags {
		if fr.Length <= 0 {
			continue
		}
		ops = append(ops, logOp{
			kind: kindInsert, file: file,
			off: fr.Off, length: fr.Length, cacheOff: fr.CacheOff, dirty: fr.Dirty,
		})
	}
	if len(ops) == 0 {
		return nil
	}
	if t.store != nil {
		batch := t.store.NewBatch()
		for _, op := range ops {
			batch.Put(opKey(t.nextSeqNum()), encodeOp(op))
		}
		if err := batch.Commit(); err != nil {
			return fmt.Errorf("dmt: batch insert: %w", err)
		}
	}
	for _, op := range ops {
		t.apply(op)
	}
	t.enforceBudget(-1)
	return nil
}

// Delete removes mappings covering [off, off+length).
func (t *Table) Delete(file string, off, length int64) error {
	if length <= 0 {
		return nil
	}
	op := logOp{kind: kindDelete, file: file, off: off, length: length}
	if err := t.persist(op); err != nil {
		return err
	}
	t.apply(op)
	t.enforceBudget(-1)
	return nil
}

// SetClean clears the D_flag of every mapped subrange of
// [off, off+length) — the Rebuilder calls this after writing dirty data
// back to the DServers (§III.F).
func (t *Table) SetClean(file string, off, length int64) error {
	return t.setDirty(file, off, length, false)
}

// SetDirty sets the D_flag of every mapped subrange of [off, off+length) —
// a write served by the cache makes the cached copy newer than the
// DServers (Algorithm 1, line 22 followed by the write).
func (t *Table) SetDirty(file string, off, length int64) error {
	return t.setDirty(file, off, length, true)
}

func (t *Table) setDirty(file string, off, length int64, dirty bool) error {
	si := t.lookupSlot(file)
	if si < 0 {
		return nil
	}
	if t.files[si].state == fsSpilled {
		if !dirty {
			// Spilled files are clean by invariant; nothing to clear.
			return nil
		}
		t.faultIn(si)
		t.enforceBudget(si)
	}
	fs := &t.files[si]
	fs.clock = 1
	t.sdHits = t.appendClipped(t.sdHits[:0], fs.seg, off, length)
	hits := t.sdHits
	for _, h := range hits {
		if h.Dirty == dirty {
			continue
		}
		if err := t.Insert(file, h.Off, h.Len, h.CacheOff, dirty); err != nil {
			return err
		}
	}
	return nil
}

// Lookup splits [off, off+length) of file into mapped subranges (clipped,
// in order) and unmapped gaps.
func (t *Table) Lookup(file string, off, length int64) (hits []Hit, gaps []extent.Gap) {
	return t.AppendLookup(nil, nil, file, off, length)
}

// AppendLookup is Lookup appending into caller-supplied buffers, returning
// the extended slices. The serve path in internal/core reuses one pair of
// buffers per request, eliminating two allocations per intercepted I/O.
// A lookup of a spilled file faults its baseline record back in first.
func (t *Table) AppendLookup(hits []Hit, gaps []extent.Gap, file string, off, length int64) ([]Hit, []extent.Gap) {
	si := t.lookupSlot(file)
	if si < 0 {
		if length > 0 {
			gaps = append(gaps, extent.Gap{Off: off, Len: length})
		}
		return hits, gaps
	}
	if t.files[si].state == fsSpilled {
		t.faultIn(si)
		t.enforceBudget(si)
	}
	fs := &t.files[si]
	fs.clock = 1
	return t.appendClipped(hits, fs.seg, off, length), t.slab.AppendGaps(fs.seg, gaps, off, length)
}

// Contains reports whether the full range is mapped.
func (t *Table) Contains(file string, off, length int64) bool {
	si := t.lookupSlot(file)
	if si < 0 {
		return false
	}
	if t.files[si].state == fsSpilled {
		t.faultIn(si)
		t.enforceBudget(si)
	}
	fs := &t.files[si]
	fs.clock = 1
	return t.slab.Covered(fs.seg, off, length)
}

// FileMapped reports whether any range of file is currently mapped
// (resident or spilled — no fault-in). Core uses it to prune per-file
// bookkeeping (write epochs) once a file's cache residency is fully gone.
func (t *Table) FileMapped(file string) bool {
	si := t.lookupSlot(file)
	if si < 0 {
		return false
	}
	fs := &t.files[si]
	if fs.state == fsSpilled {
		return fs.spillN > 0
	}
	return fs.seg.Len() > 0
}

// DirtyExtents returns up to max dirty mapped ranges across all files
// (all if max <= 0), each with File set. Files without dirty bytes are
// skipped via their incremental counters — spilled files are clean by
// invariant, so the scan never faults anything in.
func (t *Table) DirtyExtents(max int) []Hit {
	var out []Hit
	for _, si := range t.order {
		fs := &t.files[si]
		if fs.dirty == 0 {
			continue
		}
		file := t.arena.Name(fs.id)
		offs, lens, vals := t.slab.View(fs.seg)
		for i := range offs {
			if vals[i]&1 == 0 {
				continue
			}
			co, _ := unpackMapping(vals[i])
			out = append(out, Hit{File: file, Off: offs[i], Len: int64(lens[i]), CacheOff: co, Dirty: true})
			if max > 0 && len(out) >= max {
				return out
			}
		}
	}
	return out
}

// CleanExtents returns up to max clean mapped ranges (all if max <= 0),
// candidates for space reclamation. Spilled files fault in for the scan
// (it enumerates real extents); the budget sweep runs once afterwards.
func (t *Table) CleanExtents(max int) []Hit {
	var out []Hit
	for _, si := range t.order {
		if t.files[si].state == fsSpilled {
			t.faultIn(si)
		}
		fs := &t.files[si]
		file := t.arena.Name(fs.id)
		offs, lens, vals := t.slab.View(fs.seg)
		for i := range offs {
			if vals[i]&1 == 1 {
				continue
			}
			co, _ := unpackMapping(vals[i])
			out = append(out, Hit{File: file, Off: offs[i], Len: int64(lens[i]), CacheOff: co})
			if max > 0 && len(out) >= max {
				t.enforceBudget(-1)
				return out
			}
		}
	}
	t.enforceBudget(-1)
	return out
}

// Entries returns the total mapped extent count (resident + spilled).
func (t *Table) Entries() int {
	n := 0
	for i := range t.files {
		fs := &t.files[i]
		if fs.state == fsSpilled {
			n += int(fs.spillN)
		} else {
			n += fs.seg.Len()
		}
	}
	return n
}

// Bytes returns the total mapped byte count, maintained incrementally.
func (t *Table) Bytes() int64 { return t.mappedBytes }

// DirtyBytes returns the mapped bytes whose D_flag is set, maintained
// incrementally (O(1), no walk).
func (t *Table) DirtyBytes() int64 { return t.dirtyBytes }

// HasDirty reports whether any mapped range is dirty, in O(1) and without
// allocating — the Rebuilder's poll predicate.
func (t *Table) HasDirty() bool { return t.dirtyBytes > 0 }

// MetadataBytes estimates the persistent size of the table at the paper's
// 24 bytes per entry (§V.E.1). Compare with ResidentBytes/MemoryBytes,
// which are measured.
func (t *Table) MetadataBytes() int64 { return int64(t.Entries()) * EntryBytes }

// ResidentBytes returns the packed extent bytes currently resident in
// the slab — the quantity MetaBudget bounds.
func (t *Table) ResidentBytes() int64 { return t.residentBytes }

// MemoryBytes returns the measured memory footprint of the table:
// slab chunks (including allocator slack) plus per-file headers and
// index slots. The shared name arena is excluded — it is owned jointly
// with the CDT and core (report Arena().Bytes() separately).
func (t *Table) MemoryBytes() int64 {
	return t.slab.Bytes() + int64(len(t.files))*fileStateBytes
}

// SpilledFiles returns how many files are currently spilled.
func (t *Table) SpilledFiles() int { return t.spilledFiles }

// Compact rewrites the persistent state as per-file baseline records,
// then drops the op log. Only churned files — those with log ops since
// their last baseline or spill — are rewritten, so compaction cost
// tracks churn, not file count. The sequence counter is never reset:
// baseline gating relies on it staying monotonic.
func (t *Table) Compact() error {
	if t.store == nil {
		return nil
	}
	for _, si := range t.order {
		if err := t.writeBaseline(si); err != nil {
			return err
		}
	}
	for _, k := range t.store.Keys(opPrefix) {
		if err := t.store.Delete(k); err != nil {
			return fmt.Errorf("dmt: compact: %w", err)
		}
	}
	return t.store.Compact()
}

// writeBaseline seals slot si's current state into its baseline record
// if it churned since the last one. Part of Compact (and of Striped's).
func (t *Table) writeBaseline(si int32) error {
	fs := &t.files[si]
	if fs.churned == 0 || fs.state == fsSpilled {
		return nil
	}
	name := t.arena.Name(fs.id)
	if fs.seg.Len() == 0 {
		// Emptied file: ops are about to be dropped, and any stale
		// baseline would resurrect pre-delete state.
		if err := t.store.Delete(spillKey(name)); err != nil {
			return fmt.Errorf("dmt: compact: %w", err)
		}
		fs.churned = 0
		return nil
	}
	offs, lens, vals := t.slab.View(fs.seg)
	rec := staterec.EncodeFileMap(name, t.lastSeqNum(), len(offs), func(i int) (int64, int64, uint64) {
		return offs[i], int64(lens[i]), vals[i]
	})
	if err := t.store.Put(spillKey(name), rec); err != nil {
		return fmt.Errorf("dmt: compact: %w", err)
	}
	fs.churned = 0
	return nil
}

// Stats reports table activity and measured memory state.
type Stats struct {
	Inserts, Deletes uint64
	Entries          int
	Bytes            int64
	// ResidentBytes/MemoryBytes are the measured footprint (see the
	// methods of the same names); SpilledFiles, Spills, FaultIns,
	// SpillQuarantined and SpillSkipped describe the budget machinery.
	ResidentBytes    int64
	MemoryBytes      int64
	SpilledFiles     int
	Spills           uint64
	FaultIns         uint64
	SpillQuarantined uint64
	SpillSkipped     uint64
}

// Stats returns a snapshot of activity counters.
func (t *Table) Stats() Stats {
	return Stats{
		Inserts: t.inserts, Deletes: t.deletes, Entries: t.Entries(), Bytes: t.Bytes(),
		ResidentBytes: t.residentBytes, MemoryBytes: t.MemoryBytes(),
		SpilledFiles: t.spilledFiles, Spills: t.spills, FaultIns: t.faultIns,
		SpillQuarantined: t.spillQuarantined, SpillSkipped: t.spillSkipped,
	}
}

func (t *Table) apply(op logOp) {
	si := t.ensureSlot(op.file)
	if t.files[si].state == fsSpilled {
		t.faultIn(si)
	}
	fs := &t.files[si]
	covered, dirtyCov := t.overlapStats(fs.seg, op.off, op.length)
	oldSeg := t.slab.SegBytes(fs.seg)
	switch op.kind {
	case kindInsert:
		t.inserts++
		t.slab.Insert(&fs.seg, op.off, op.length, packMapping(op.cacheOff, op.dirty), splitMapping)
		fs.bytes += op.length - covered
		t.mappedBytes += op.length - covered
		fs.dirty -= dirtyCov
		t.dirtyBytes -= dirtyCov
		if op.dirty {
			fs.dirty += op.length
			t.dirtyBytes += op.length
		}
	case kindDelete:
		t.deletes++
		t.slab.Delete(&fs.seg, op.off, op.length, splitMapping)
		fs.bytes -= covered
		t.mappedBytes -= covered
		fs.dirty -= dirtyCov
		t.dirtyBytes -= dirtyCov
	}
	t.residentBytes += t.slab.SegBytes(fs.seg) - oldSeg
	fs.churned = 1
	fs.clock = 1
}

// overlapStats returns the mapped bytes of seg inside [off, off+length)
// (clipped) and how many of them carry the D_flag — the incremental
// counter deltas of apply. Allocation-free.
func (t *Table) overlapStats(g extent.Seg, off, length int64) (covered, dirty int64) {
	offs, lens, vals := t.slab.View(g)
	end := off + length
	for i := t.slab.FirstIntersecting(g, off); i < len(offs); i++ {
		if offs[i] >= end {
			break
		}
		lo, hi := offs[i], offs[i]+int64(lens[i])
		if lo < off {
			lo = off
		}
		if hi > end {
			hi = end
		}
		if hi <= lo {
			continue
		}
		covered += hi - lo
		if vals[i]&1 == 1 {
			dirty += hi - lo
		}
	}
	return covered, dirty
}

// enforceBudget spills cold clean files until the resident packed-extent
// bytes fit the budget. Second-chance clock over the deterministic order
// list: a touched file survives one sweep. protect (a slot, or -1) is
// never spilled — the file a fault-in just revived. Dirty files never
// spill (their D_flag state must stay instantly reachable for the
// Rebuilder); a spill whose record write fails is skipped and counted.
func (t *Table) enforceBudget(protect int32) {
	if t.budget <= 0 || t.store == nil || t.residentBytes <= t.budget {
		return
	}
	for steps := 2 * len(t.order); steps > 0 && t.residentBytes > t.budget; steps-- {
		if len(t.order) == 0 {
			return
		}
		if t.hand >= len(t.order) {
			t.hand = 0
		}
		si := t.order[t.hand]
		t.hand++
		if si == protect {
			continue
		}
		fs := &t.files[si]
		if fs.state != fsResident || fs.seg.Len() == 0 || fs.dirty > 0 {
			continue
		}
		if fs.clock != 0 {
			fs.clock = 0
			continue
		}
		t.spillFile(si)
	}
}

// spillFile seals slot si into its baseline record and drops its
// extents from the slab. Caller verified eligibility (resident, clean,
// non-empty).
func (t *Table) spillFile(si int32) {
	fs := &t.files[si]
	name := t.arena.Name(fs.id)
	offs, lens, vals := t.slab.View(fs.seg)
	rec := staterec.EncodeFileMap(name, t.lastSeqNum(), len(offs), func(i int) (int64, int64, uint64) {
		return offs[i], int64(lens[i]), vals[i]
	})
	if err := t.store.Put(spillKey(name), rec); err != nil {
		// An injected or real write failure aborts this spill; the file
		// simply stays resident (the budget is advisory, correctness is
		// not).
		t.spillSkipped++
		return
	}
	n := uint32(fs.seg.Len())
	t.residentBytes -= t.slab.SegBytes(fs.seg)
	t.slab.Free(&fs.seg)
	fs.state = fsSpilled
	fs.spillN = n
	// The record now covers every logged op of the file (<= lastSeq),
	// so the file is clean for Compact too.
	fs.churned = 0
	t.spilledFiles++
	t.spills++
	if t.onResident != nil {
		t.onResident(name)
	}
}

// faultIn decodes slot si's baseline record back into the slab. A
// missing or corrupt record quarantines the file — tombstoned, deleted,
// counted, and served as a miss from then on — never applied.
func (t *Table) faultIn(si int32) {
	fs := &t.files[si]
	name := t.arena.Name(fs.id)
	key := spillKey(name)
	data, ok := t.store.Get(key)
	if ok && t.spillRead != nil {
		data = t.spillRead(name, data)
	}
	decoded := false
	n := 0
	if ok {
		h, err := staterec.DecodeFileMap(data, func(off, length int64, val uint64) {
			t.slab.Insert(&fs.seg, off, length, val, splitMapping)
			n++
		})
		decoded = err == nil && h.File == name
	}
	t.spilledFiles--
	fs.state = fsResident
	fs.spillN = 0
	fs.clock = 1
	if !decoded {
		// Quarantine: drop any partial decode, tombstone the file in the
		// op log so stale ops cannot resurrect it, then delete the bad
		// record. If the tombstone write fails the record stays put — the
		// next open re-quarantines deterministically.
		t.slab.Free(&fs.seg)
		t.mappedBytes -= fs.bytes
		t.dirtyBytes -= fs.dirty
		fs.bytes, fs.dirty = 0, 0
		t.spillQuarantined++
		if err := t.persist(logOp{kind: kindDelete, file: name, off: 0, length: clearLen}); err == nil {
			_ = t.store.Delete(key)
		}
		if t.onResident != nil {
			t.onResident(name)
		}
		return
	}
	t.residentBytes += t.slab.SegBytes(fs.seg)
	t.faultIns++
	if t.faultIO != nil {
		t.faultIO(n)
	}
	if t.onResident != nil {
		t.onResident(name)
	}
}

// installBaseline applies one replayed baseline record during Open. A
// clean file installs spilled — count and bytes from the validated
// record, no extents decoded — and faults in on first touch. A record
// holding dirty extents (written by Compact, not the spiller) installs
// resident: the spilled state must stay all-clean for the Rebuilder's
// dirty scans.
func (t *Table) installBaseline(name string, h staterec.FileMapHeader, total, dirty int64, data []byte) {
	si := t.ensureSlot(name)
	fs := &t.files[si]
	if dirty == 0 {
		fs.state = fsSpilled
		fs.spillN = h.Count
		fs.bytes = total
		t.mappedBytes += total
		t.spilledFiles++
		return
	}
	_, _ = staterec.DecodeFileMap(data, func(off, length int64, val uint64) {
		t.slab.Insert(&fs.seg, off, length, val, splitMapping)
	})
	fs.bytes = total
	fs.dirty = dirty
	t.mappedBytes += total
	t.dirtyBytes += dirty
	t.residentBytes += t.slab.SegBytes(fs.seg)
}

// nextSeqNum returns the next persist-log sequence number: the injected
// shared counter when striped, the table-local counter otherwise.
func (t *Table) nextSeqNum() uint64 {
	if t.nextSeq != nil {
		return t.nextSeq()
	}
	t.seq++
	return t.seq
}

// lastSeqNum returns the highest issued sequence number — what a
// baseline record written now supersedes.
func (t *Table) lastSeqNum() uint64 {
	if t.lastSeq != nil {
		return t.lastSeq()
	}
	return t.seq
}

func (t *Table) persist(op logOp) error {
	if t.store == nil {
		return nil
	}
	if err := t.store.Put(opKey(t.nextSeqNum()), encodeOp(op)); err != nil {
		return fmt.Errorf("dmt: persist: %w", err)
	}
	return nil
}

// appendClipped appends the mapped subranges of [off, off+length) to dst,
// clipped to the query range. Allocation-free beyond dst growth.
func (t *Table) appendClipped(dst []Hit, g extent.Seg, off, length int64) []Hit {
	offs, lens, vals := t.slab.View(g)
	end := off + length
	for i := t.slab.FirstIntersecting(g, off); i < len(offs); i++ {
		if offs[i] >= end {
			break
		}
		lo, hi := offs[i], offs[i]+int64(lens[i])
		co, dirty := unpackMapping(vals[i])
		if lo < off {
			co += off - lo
			lo = off
		}
		if hi > end {
			hi = end
		}
		if hi <= lo {
			continue
		}
		dst = append(dst, Hit{Off: lo, Len: hi - lo, CacheOff: co, Dirty: dirty})
	}
	return dst
}

const (
	opPrefix = "dmtop|"
	// spillPrefix keys the per-file baseline records; the file name
	// rides in the key so a corrupt value still identifies its file.
	spillPrefix = "dmtfx|"
)

func opKey(seq uint64) string { return fmt.Sprintf(opPrefix+"%020d", seq) }

func spillKey(name string) string { return spillPrefix + name }

const (
	kindInsert byte = 1
	kindDelete byte = 2
)

type logOp struct {
	kind     byte
	file     string
	off      int64
	length   int64
	cacheOff int64
	dirty    bool
}
