package dmt

import (
	"fmt"
	"math/rand"
	"testing"
)

// dirtySum recomputes the dirty byte count the slow way, as the oracle for
// the incremental counter.
func dirtySum(t *Table) int64 {
	var n int64
	for _, h := range t.DirtyExtents(0) {
		n += h.Len
	}
	return n
}

// TestDirtyBytesCounter drives a randomized mix of inserts, deletes and
// flag flips and checks the O(1) dirty counter against a full walk after
// every mutation.
func TestDirtyBytesCounter(t *testing.T) {
	tbl := New()
	rng := rand.New(rand.NewSource(7))
	files := []string{"/a", "/b", "/c"}
	for i := 0; i < 2000; i++ {
		file := files[rng.Intn(len(files))]
		off := int64(rng.Intn(64)) << 10
		length := int64(1+rng.Intn(32)) << 10
		var err error
		switch rng.Intn(5) {
		case 0, 1:
			err = tbl.Insert(file, off, length, off, rng.Intn(2) == 0)
		case 2:
			err = tbl.Delete(file, off, length)
		case 3:
			err = tbl.SetClean(file, off, length)
		case 4:
			err = tbl.SetDirty(file, off, length)
		}
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if got, want := tbl.DirtyBytes(), dirtySum(tbl); got != want {
			t.Fatalf("op %d: DirtyBytes=%d, walk says %d", i, got, want)
		}
		if got, want := tbl.HasDirty(), dirtySum(tbl) > 0; got != want {
			t.Fatalf("op %d: HasDirty=%v, walk says %v", i, got, want)
		}
	}
}

// TestDirtyBytesCounterBatch covers the batched insert path.
func TestDirtyBytesCounterBatch(t *testing.T) {
	tbl := New()
	if err := tbl.InsertBatch("/f", []FragmentInsert{
		{Off: 0, Length: 4096, CacheOff: 0, Dirty: true},
		{Off: 8192, Length: 4096, CacheOff: 4096, Dirty: false},
		{Off: 2048, Length: 4096, CacheOff: 8192, Dirty: true},
	}); err != nil {
		t.Fatal(err)
	}
	if got, want := tbl.DirtyBytes(), dirtySum(tbl); got != want {
		t.Fatalf("DirtyBytes=%d, walk says %d", got, want)
	}
}

// TestStripedDirtyBytes checks the aggregate counter and the early-exit
// predicate across stripes.
func TestStripedDirtyBytes(t *testing.T) {
	s := NewStriped()
	if s.HasDirty() {
		t.Fatal("empty table claims dirty data")
	}
	var want int64
	for i := 0; i < 40; i++ {
		file := fmt.Sprintf("/w%02d", i)
		dirty := i%3 != 0
		if err := s.Insert(file, 0, 4096, int64(i)*4096, dirty); err != nil {
			t.Fatal(err)
		}
		if dirty {
			want += 4096
		}
	}
	if got := s.DirtyBytes(); got != want {
		t.Fatalf("DirtyBytes=%d, want %d", got, want)
	}
	if !s.HasDirty() {
		t.Fatal("HasDirty=false with dirty mappings present")
	}
	for i := 0; i < 40; i++ {
		if err := s.SetClean(fmt.Sprintf("/w%02d", i), 0, 4096); err != nil {
			t.Fatal(err)
		}
	}
	if s.HasDirty() {
		t.Fatalf("HasDirty=true after cleaning everything (DirtyBytes=%d)", s.DirtyBytes())
	}
}

// TestHasDirtyZeroAllocs pins the poll predicate at zero allocations: the
// Rebuilder ticker calls it every period.
func TestHasDirtyZeroAllocs(t *testing.T) {
	tbl := New()
	if err := tbl.Insert("/f", 0, 4096, 0, true); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if !tbl.HasDirty() {
			t.Fatal("lost dirty state")
		}
	}); n != 0 {
		t.Fatalf("Table.HasDirty allocates %v/op, want 0", n)
	}
	s := NewStriped()
	if err := s.Insert("/f", 0, 4096, 0, true); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if !s.HasDirty() {
			t.Fatal("lost dirty state")
		}
	}); n != 0 {
		t.Fatalf("Striped.HasDirty allocates %v/op, want 0", n)
	}
}
