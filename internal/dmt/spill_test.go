package dmt

import (
	"fmt"
	"math/rand"
	"testing"

	"s4dcache/internal/extent"
	"s4dcache/internal/kvstore"
)

// spillStore opens a fresh in-memory metadata store.
func spillStore(t *testing.T) *kvstore.Store {
	t.Helper()
	st, err := kvstore.Open(kvstore.NewMemBackend(), "dmt", kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// spillTable opens a budgeted table over a fresh store.
func spillTable(t *testing.T, budget int64, opts ...Option) *Table {
	t.Helper()
	tbl, err := Open(spillStore(t), append([]Option{WithMetaBudget(budget)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func spillName(i int) string { return fmt.Sprintf("sf%03d", i) }

// fillSpill inserts n clean single-extent files.
func fillSpill(t *testing.T, tbl *Table, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := tbl.Insert(spillName(i), 0, 4096, int64(i)*4096, false); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSpillFaultInRoundTrip drives a file through the full resident →
// spilled → resident cycle: the budget spills cold clean files, a lookup
// of a spilled file faults its sealed record back in, and the faulted
// mappings are byte-for-byte what was inserted.
func TestSpillFaultInRoundTrip(t *testing.T) {
	tbl := spillTable(t, 200)
	fillSpill(t, tbl, 16)
	st := tbl.Stats()
	if st.Spills == 0 || st.SpilledFiles == 0 {
		t.Fatalf("budget never spilled: %+v", st)
	}
	if tbl.ResidentBytes() > 200 {
		t.Fatalf("resident bytes %d exceed budget", tbl.ResidentBytes())
	}
	// Every file — spilled or resident — must serve correct mappings.
	for i := 0; i < 16; i++ {
		hits, gaps := tbl.Lookup(spillName(i), 0, 4096)
		if len(hits) != 1 || len(gaps) != 0 {
			t.Fatalf("file %d: hits=%v gaps=%v", i, hits, gaps)
		}
		if h := hits[0]; h.Off != 0 || h.Len != 4096 || h.CacheOff != int64(i)*4096 || h.Dirty {
			t.Fatalf("file %d: faulted hit %+v", i, h)
		}
	}
	if tbl.Stats().FaultIns == 0 {
		t.Fatal("lookups never faulted a spilled file in")
	}
	// Entries and mapped bytes must account spilled files throughout.
	if got := tbl.Entries(); got != 16 {
		t.Fatalf("entries = %d, want 16", got)
	}
	if got := tbl.Bytes(); got != 16*4096 {
		t.Fatalf("bytes = %d, want %d", got, 16*4096)
	}
}

// TestSpillSkipsDirtyFiles pins the spilled ⇒ clean invariant: a file
// holding dirty extents is never spilled, no matter how cold, because
// the Rebuilder's dirty scans only walk resident state.
func TestSpillSkipsDirtyFiles(t *testing.T) {
	tbl := spillTable(t, 150)
	if err := tbl.Insert("dirty", 0, 4096, 0, true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := tbl.Insert(spillName(i), 0, 4096, int64(1+i)*4096, false); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(tbl.DirtyExtents(0)); got != 1 {
		t.Fatalf("dirty extents = %d, want 1 (dirty file must stay resident)", got)
	}
	// SetClean makes it eligible; further pressure may now spill it.
	if err := tbl.SetClean("dirty", 0, 4096); err != nil {
		t.Fatal(err)
	}
	for i := 12; i < 40; i++ {
		if err := tbl.Insert(spillName(i), 0, 4096, int64(1+i)*4096, false); err != nil {
			t.Fatal(err)
		}
	}
	hits, _ := tbl.Lookup("dirty", 0, 4096)
	if len(hits) != 1 || hits[0].Dirty {
		t.Fatalf("clean-after-spill lookup: %+v", hits)
	}
}

// TestSpillVsUnboundedDeterminism is the spill determinism oracle: the
// same op+lookup sequence against a tightly budgeted table and an
// unbounded one must expose byte-identical virtual state — extents,
// bytes, entries — at every step. Spilling may only move metadata, never
// change it.
func TestSpillVsUnboundedDeterminism(t *testing.T) {
	budgeted := spillTable(t, 300)
	unbounded := New()
	rng := rand.New(rand.NewSource(41))
	for step := 0; step < 4000; step++ {
		file := spillName(rng.Intn(24))
		off := int64(rng.Intn(32)) * 4096
		length := int64(rng.Intn(3)+1) * 4096
		switch rng.Intn(5) {
		case 0:
			if err := budgeted.Delete(file, off, length); err != nil {
				t.Fatal(err)
			}
			_ = unbounded.Delete(file, off, length)
		case 1:
			bh, bg := budgeted.Lookup(file, off, length)
			uh, ug := unbounded.Lookup(file, off, length)
			if fmt.Sprint(bh, bg) != fmt.Sprint(uh, ug) {
				t.Fatalf("step %d: lookup diverged:\nbudgeted  %v %v\nunbounded %v %v", step, bh, bg, uh, ug)
			}
		default:
			cacheOff := int64(step) * 4096
			// Dirty inserts are rare so most files stay spill-eligible.
			dirty := rng.Intn(8) == 0
			if err := budgeted.Insert(file, off, length, cacheOff, dirty); err != nil {
				t.Fatal(err)
			}
			_ = unbounded.Insert(file, off, length, cacheOff, dirty)
			if dirty {
				if err := budgeted.SetClean(file, off, length); err != nil {
					t.Fatal(err)
				}
				_ = unbounded.SetClean(file, off, length)
			}
		}
		if budgeted.Entries() != unbounded.Entries() || budgeted.Bytes() != unbounded.Bytes() {
			t.Fatalf("step %d: accounting diverged: entries %d/%d bytes %d/%d", step,
				budgeted.Entries(), unbounded.Entries(), budgeted.Bytes(), unbounded.Bytes())
		}
	}
	if budgeted.Stats().Spills == 0 || budgeted.Stats().FaultIns == 0 {
		t.Fatalf("oracle never exercised spill machinery: %+v", budgeted.Stats())
	}
	// Full final dump comparison, dirty and clean.
	bd, bc := fmt.Sprint(budgeted.DirtyExtents(0)), fmt.Sprint(budgeted.CleanExtents(0))
	ud, uc := fmt.Sprint(unbounded.DirtyExtents(0)), fmt.Sprint(unbounded.CleanExtents(0))
	if bd != ud || bc != uc {
		t.Fatalf("final state diverged:\nbudgeted dirty  %s\nunbounded dirty %s\nbudgeted clean  %s\nunbounded clean %s", bd, ud, bc, uc)
	}
}

// TestSpillSurvivesReopen closes the loop with §14 recovery: spilled
// baseline records plus the op log rebuild the identical table on a
// fresh Open, with clean spilled files installed lazily (no fault-in
// until first touch).
func TestSpillSurvivesReopen(t *testing.T) {
	backend := kvstore.NewMemBackend()
	st, err := kvstore.Open(backend, "dmt", kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Open(st, WithMetaBudget(200))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := tbl.Insert(spillName(i), 0, 4096, int64(i)*4096, false); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.Stats().Spills == 0 {
		t.Fatal("no spills before reopen")
	}

	st2, err := kvstore.Open(backend, "dmt", kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	re, err := Open(st2, WithMetaBudget(200))
	if err != nil {
		t.Fatal(err)
	}
	if re.Entries() != 16 || re.Bytes() != 16*4096 {
		t.Fatalf("reopen: entries=%d bytes=%d", re.Entries(), re.Bytes())
	}
	if re.SpilledFiles() == 0 {
		t.Fatal("reopen installed every spilled file resident")
	}
	for i := 0; i < 16; i++ {
		hits, gaps := re.Lookup(spillName(i), 0, 4096)
		if len(hits) != 1 || len(gaps) != 0 || hits[0].CacheOff != int64(i)*4096 {
			t.Fatalf("reopen file %d: hits=%v gaps=%v", i, hits, gaps)
		}
	}
}

// TestSpillQuarantineThenMiss damages a spilled record via the SpillRead
// hook (at-rest corruption on the fault-in path): the fault must
// quarantine the file — served as a full miss, tombstoned so stale ops
// cannot resurrect it — never decode wrong mappings.
func TestSpillQuarantineThenMiss(t *testing.T) {
	backend := kvstore.NewMemBackend()
	st, err := kvstore.Open(backend, "dmt", kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Open(st, WithMetaBudget(200), WithSpillRead(func(name string, data []byte) []byte {
		out := append([]byte(nil), data...)
		out[len(out)/2] ^= 0x40
		return out
	}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := tbl.Insert(spillName(i), 0, 4096, int64(i)*4096, false); err != nil {
			t.Fatal(err)
		}
	}
	st0 := tbl.Stats()
	if st0.Spills == 0 {
		t.Fatal("nothing spilled")
	}
	var quarantined int
	for i := 0; i < 16; i++ {
		hits, gaps := tbl.Lookup(spillName(i), 0, 4096)
		switch {
		case len(hits) == 1 && len(gaps) == 0 && hits[0].CacheOff == int64(i)*4096:
			// stayed resident — fine
		case len(hits) == 0 && len(gaps) == 1:
			quarantined++ // full miss, never wrong data
		default:
			t.Fatalf("file %d: partial or wrong mappings after corrupt fault-in: hits=%v gaps=%v", i, hits, gaps)
		}
	}
	st1 := tbl.Stats()
	if quarantined == 0 || st1.SpillQuarantined == 0 {
		t.Fatalf("corruption never quarantined: misses=%d stats=%+v", quarantined, st1)
	}
	// Quarantine is durable: a reopen must not resurrect the damaged
	// files from stale ops.
	st2, err := kvstore.Open(backend, "dmt", kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	re, err := Open(st2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := re.Entries(), 16-quarantined; got != want {
		t.Fatalf("reopen entries = %d, want %d (quarantine must stick)", got, want)
	}
}

// TestStripedSpillViews pins the §12 epoch-view interaction: ViewLookup
// on a spilled file reports !ok (the spilled sentinel) so the lock-free
// read path falls back to the locked path, and after the locked lookup
// faults the file in, the republished view serves it lock-free again.
func TestStripedSpillViews(t *testing.T) {
	st := spillStore(t)
	tbl, err := OpenStriped(st, WithMetaBudget(300))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if err := tbl.Insert(spillName(i), 0, 4096, int64(i)*4096, false); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.Stats().SpilledFiles == 0 {
		t.Fatal("nothing spilled")
	}
	var sentinels int
	for i := 0; i < 32; i++ {
		hits, gaps, ok := tbl.ViewLookup(nil, nil, spillName(i), 0, 4096)
		if !ok {
			sentinels++
			// Locked path faults in…
			lh, lg := tbl.Lookup(spillName(i), 0, 4096)
			if len(lh) != 1 || len(lg) != 0 {
				t.Fatalf("file %d: locked fault-in lookup: %v %v", i, lh, lg)
			}
			// …and the republished view serves the file lock-free.
			vh, vg, vok := tbl.ViewLookup(nil, nil, spillName(i), 0, 4096)
			if !vok || len(vh) != 1 || len(vg) != 0 {
				t.Fatalf("file %d: view after fault-in: ok=%v hits=%v gaps=%v", i, vok, vh, vg)
			}
			continue
		}
		if len(hits) != 1 || len(gaps) != 0 {
			t.Fatalf("file %d: resident view: %v %v", i, hits, gaps)
		}
	}
	if sentinels == 0 {
		t.Fatal("no view ever reported the spilled sentinel")
	}
}

// TestPackedLookupZeroAllocs pins the packed-extent serve path:
// AppendLookup against resident files with caller-owned buffers must not
// allocate, budget machinery included.
func TestPackedLookupZeroAllocs(t *testing.T) {
	tbl := spillTable(t, 1<<20) // budget present but never exceeded
	fillSpill(t, tbl, 64)
	names := make([]string, 64)
	for i := range names {
		names[i] = spillName(i)
	}
	hits := make([]Hit, 0, 8)
	gaps := make([]extent.Gap, 0, 8)
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		hits, gaps = tbl.AppendLookup(hits[:0], gaps[:0], names[i%64], 0, 4096)
		i++
	})
	if avg != 0 {
		t.Fatalf("packed AppendLookup allocates %.1f/op, want 0", avg)
	}
}

// TestSpillBookkeepingZeroAllocs pins the budget bookkeeping on the
// serve path: lookups of resident files on a table actively holding
// spilled files (clock touches, residency accounting) must not allocate.
func TestSpillBookkeepingZeroAllocs(t *testing.T) {
	tbl := spillTable(t, 400)
	fillSpill(t, tbl, 64)
	if tbl.SpilledFiles() == 0 {
		t.Fatal("no spilled files to bookkeep around")
	}
	// Fault a stable working set in once; repeated lookups of the same
	// files stay resident (clock protection) and must be clean.
	resident := []string{spillName(60), spillName(61)}
	for _, f := range resident {
		tbl.Lookup(f, 0, 4096)
	}
	hits := make([]Hit, 0, 8)
	gaps := make([]extent.Gap, 0, 8)
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		hits, gaps = tbl.AppendLookup(hits[:0], gaps[:0], resident[i%2], 0, 4096)
		i++
	})
	if avg != 0 {
		t.Fatalf("budgeted AppendLookup allocates %.1f/op, want 0", avg)
	}
}
