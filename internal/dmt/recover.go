package dmt

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"s4dcache/internal/kvstore"
	"s4dcache/internal/staterec"
)

// This file is the warm-restart surface of the DMT: walking the persistent
// state (baseline records plus op-log) without owning it, constructing
// tables attached to a store without replaying it, and applying recovered
// state in memory without re-persisting what the log already holds. It
// also holds the op wire codec the log and the walkers share.

// walkState walks the full persistent DMT state of store: every per-file
// baseline record first, then the op-log in sequence order with each
// file's ops at or below its baseline's BaseSeq skipped (the baseline
// already covers them). Baseline records are CRC-verified and
// shape-validated end to end before baseline is called with the file's
// header, total mapped bytes, and dirty mapped bytes; a record that fails
// validation quarantines its file — no baseline call, all of the file's
// ops skipped, a tombstone delete appended to the log, and the bad record
// removed so the damage is counted once and never resurrects. Returns the
// highest sequence number present (including appended tombstones) and the
// quarantined file count.
func walkState(
	store *kvstore.Store,
	baseline func(name string, h staterec.FileMapHeader, total, dirty int64, data []byte),
	opFn func(op logOp),
) (maxSeq uint64, quarantined int, err error) {
	base := make(map[string]uint64)
	quar := make(map[string]bool)
	var quarNames []string
	for _, k := range store.Keys(spillPrefix) {
		name := strings.TrimPrefix(k, spillPrefix)
		data, ok := store.Get(k)
		var h staterec.FileMapHeader
		var total, dirty int64
		derr := staterec.ErrCorrupt
		if ok {
			// Full validation pass: a record that decodes clean here can
			// never fail a later fault-in decode of the same bytes.
			h, derr = staterec.DecodeFileMap(data, func(off, length int64, val uint64) {
				total += length
				if val&1 == 1 {
					dirty += length
				}
			})
		}
		if derr != nil || h.File != name {
			quar[name] = true
			quarNames = append(quarNames, name)
			continue
		}
		if h.BaseSeq > maxSeq {
			maxSeq = h.BaseSeq
		}
		base[name] = h.BaseSeq
		baseline(name, h, total, dirty, data)
	}
	for _, k := range store.Keys(opPrefix) {
		// The max is taken explicitly over every key rather than trusting
		// store key order: resuming below an existing sequence number would
		// silently overwrite live log records on the next persist.
		seq, perr := strconv.ParseUint(strings.TrimPrefix(k, opPrefix), 10, 64)
		if perr != nil {
			return 0, 0, fmt.Errorf("dmt: malformed log key %q: %w", k, perr)
		}
		if seq > maxSeq {
			maxSeq = seq
		}
		v, ok := store.Get(k)
		if !ok {
			continue
		}
		op, derr := decodeOp(v)
		if derr != nil {
			return 0, 0, fmt.Errorf("dmt: replay %s: %w", k, derr)
		}
		if quar[op.file] {
			continue
		}
		if bs, ok := base[op.file]; ok && seq <= bs {
			continue
		}
		opFn(op)
	}
	// Quarantine cleanup: tombstone each damaged file past every existing
	// op so nothing can resurrect it, then drop the bad record. If the
	// tombstone write fails the record stays put, and the next open
	// re-quarantines the same file deterministically.
	for _, name := range quarNames {
		tomb := encodeOp(logOp{kind: kindDelete, file: name, off: 0, length: clearLen})
		if perr := store.Put(opKey(maxSeq+1), tomb); perr == nil {
			maxSeq++
			_ = store.Delete(spillPrefix + name)
		}
	}
	return maxSeq, len(quarNames), nil
}

// ReplayState walks the full persistent DMT state in store — baseline
// records first, then the non-superseded op-log tail — calling apply for
// every surviving mapping event (insert=true for inserts and baseline
// extents, false for deletes). It returns the highest sequence number
// present, which a table attached to the same store must continue
// numbering from, and how many files were quarantined for damaged
// baseline records (tombstoned and dropped, never applied). Op records
// already passed the store's WAL/snapshot CRCs to be visible here;
// baseline records additionally carry their own end-to-end seal.
func ReplayState(store *kvstore.Store, apply func(file string, off, length, cacheOff int64, dirty, insert bool)) (maxSeq uint64, quarantined int, err error) {
	if store == nil {
		return 0, 0, fmt.Errorf("dmt: store is required")
	}
	return walkState(store,
		func(name string, h staterec.FileMapHeader, total, dirty int64, data []byte) {
			_, _ = staterec.DecodeFileMap(data, func(off, length int64, val uint64) {
				co, d := unpackMapping(val)
				apply(name, off, length, co, d, true)
			})
		},
		func(op logOp) {
			apply(op.file, op.off, op.length, op.cacheOff, op.dirty, op.kind == kindInsert)
		},
	)
}

// NewPersisted returns an empty table attached to store without replaying
// its state, numbering new ops after seq (as returned by ReplayState).
// The warm-restart recoverer uses it to install recovered extents
// selectively — via Restore, which does not re-persist what the log
// already holds — while new mutations append to the same log as usual.
func NewPersisted(store *kvstore.Store, seq uint64, opts ...Option) (*Table, error) {
	if store == nil {
		return nil, fmt.Errorf("dmt: store is required")
	}
	t := New(opts...)
	t.store = store
	t.seq = seq
	return t, nil
}

// Restore applies an insert to the in-memory table only, without writing a
// log op. Correct exactly when the mapping is already durable in the
// attached store's state (warm-restart re-admission); anywhere else it
// would silently fork memory from the log. Restored files count as
// churned, so the next Compact reseals them into baselines.
func (t *Table) Restore(file string, off, length, cacheOff int64, dirty bool) {
	if length <= 0 {
		return
	}
	t.apply(logOp{kind: kindInsert, file: file, off: off, length: length, cacheOff: cacheOff, dirty: dirty})
	t.enforceBudget(-1)
}

// NewStripedPersisted is NewPersisted for the concurrent table: attached to
// store, numbering after seq, nothing replayed, every stripe view published
// empty.
func NewStripedPersisted(store *kvstore.Store, seq uint64, opts ...Option) (*Striped, error) {
	if store == nil {
		return nil, fmt.Errorf("dmt: store is required")
	}
	s := NewStriped(opts...)
	s.store = store
	for i := range s.stripes {
		s.stripes[i].t.store = store
	}
	s.seq.Store(seq)
	for i := range s.stripes {
		s.stripes[i].republishAll()
	}
	return s, nil
}

// Restore applies an insert to file's stripe without persisting, and
// republishes the stripe's epoch view so lock-free readers see the
// recovered mapping. Same durability contract as Table.Restore.
func (s *Striped) Restore(file string, off, length, cacheOff int64, dirty bool) {
	if length <= 0 {
		return
	}
	sh := &s.stripes[stripeIndex(file)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.t.apply(logOp{kind: kindInsert, file: file, off: off, length: length, cacheOff: cacheOff, dirty: dirty})
	sh.t.enforceBudget(-1)
	sh.republish(file)
}

// encodeOp serializes one log op: kind byte, length-prefixed file name,
// then off/len/cacheOff as little-endian u64 and the dirty flag byte.
func encodeOp(op logOp) []byte {
	buf := make([]byte, 0, 1+4+len(op.file)+8*3+1)
	buf = append(buf, op.kind)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(op.file)))
	buf = append(buf, op.file...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(op.off))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(op.length))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(op.cacheOff))
	if op.dirty {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return buf
}

func decodeOp(data []byte) (logOp, error) {
	if len(data) < 1+4 {
		return logOp{}, fmt.Errorf("dmt: short op record (%d bytes)", len(data))
	}
	op := logOp{kind: data[0]}
	if op.kind != kindInsert && op.kind != kindDelete {
		return logOp{}, fmt.Errorf("dmt: unknown op kind %d", op.kind)
	}
	n := int(binary.LittleEndian.Uint32(data[1:]))
	rest := data[5:]
	if n < 0 || len(rest) != n+8*3+1 {
		return logOp{}, fmt.Errorf("dmt: malformed op record (%d bytes, name %d)", len(data), n)
	}
	op.file = string(rest[:n])
	rest = rest[n:]
	op.off = int64(binary.LittleEndian.Uint64(rest))
	op.length = int64(binary.LittleEndian.Uint64(rest[8:]))
	op.cacheOff = int64(binary.LittleEndian.Uint64(rest[16:]))
	op.dirty = rest[24] != 0
	return op, nil
}
