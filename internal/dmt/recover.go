package dmt

import (
	"fmt"
	"strconv"
	"strings"

	"s4dcache/internal/kvstore"
)

// This file is the warm-restart surface of the DMT: walking a persistent
// op-log without owning it, constructing tables attached to a store without
// replaying it, and applying recovered state in memory without re-persisting
// ops the log already holds.

// ReplayLog walks the persistent DMT op-log in store in sequence order,
// calling apply for every op (insert=true for inserts, false for deletes),
// and returns the highest sequence number present — the point a table
// attached to the same store must continue numbering from. Every record
// already passed the store's WAL/snapshot CRCs to be visible here.
func ReplayLog(store *kvstore.Store, apply func(file string, off, length, cacheOff int64, dirty, insert bool)) (maxSeq uint64, err error) {
	if store == nil {
		return 0, fmt.Errorf("dmt: store is required")
	}
	for _, k := range store.Keys(opPrefix) {
		// The max is taken explicitly over every key rather than trusting
		// store key order: resuming below an existing sequence number would
		// silently overwrite live log records on the next persist.
		seq, err := strconv.ParseUint(strings.TrimPrefix(k, opPrefix), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("dmt: malformed log key %q: %w", k, err)
		}
		if seq > maxSeq {
			maxSeq = seq
		}
		v, ok := store.Get(k)
		if !ok {
			continue
		}
		op, err := decodeOp(v)
		if err != nil {
			return 0, fmt.Errorf("dmt: replay %s: %w", k, err)
		}
		apply(op.file, op.off, op.length, op.cacheOff, op.dirty, op.kind == kindInsert)
	}
	return maxSeq, nil
}

// NewPersisted returns an empty table attached to store without replaying
// its log, numbering new ops after seq (as returned by ReplayLog). The warm-
// restart recoverer uses it to install recovered extents selectively — via
// Restore, which does not re-persist what the log already holds — while new
// mutations append to the same log as usual.
func NewPersisted(store *kvstore.Store, seq uint64) (*Table, error) {
	if store == nil {
		return nil, fmt.Errorf("dmt: store is required")
	}
	t := New()
	t.store = store
	t.seq = seq
	return t, nil
}

// Restore applies an insert to the in-memory table only, without writing a
// log op. Correct exactly when the mapping is already durable in the
// attached store's log (warm-restart re-admission); anywhere else it would
// silently fork memory from the log.
func (t *Table) Restore(file string, off, length, cacheOff int64, dirty bool) {
	if length <= 0 {
		return
	}
	t.apply(logOp{kind: kindInsert, file: file, off: off, length: length, cacheOff: cacheOff, dirty: dirty})
}

// NewStripedPersisted is NewPersisted for the concurrent table: attached to
// store, numbering after seq, nothing replayed, every stripe view published
// empty.
func NewStripedPersisted(store *kvstore.Store, seq uint64) (*Striped, error) {
	if store == nil {
		return nil, fmt.Errorf("dmt: store is required")
	}
	s := NewStriped()
	s.store = store
	for i := range s.stripes {
		s.stripes[i].t.store = store
	}
	s.seq.Store(seq)
	for i := range s.stripes {
		s.stripes[i].republishAll()
	}
	return s, nil
}

// Restore applies an insert to file's stripe without persisting, and
// republishes the stripe's epoch view so lock-free readers see the
// recovered mapping. Same durability contract as Table.Restore.
func (s *Striped) Restore(file string, off, length, cacheOff int64, dirty bool) {
	if length <= 0 {
		return
	}
	sh := &s.stripes[stripeIndex(file)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.t.apply(logOp{kind: kindInsert, file: file, off: off, length: length, cacheOff: cacheOff, dirty: dirty})
	sh.republish(file)
}
