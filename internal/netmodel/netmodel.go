// Package netmodel provides the interconnect cost model used between
// compute nodes and file servers. The paper's testbed uses Gigabit
// Ethernet; each sub-request pays a fixed per-message latency plus a
// size-proportional transfer term on the server's link.
package netmodel

import "time"

// Params describes one network link.
type Params struct {
	// Latency is the fixed per-message cost (propagation + stack).
	Latency time.Duration
	// Bandwidth is the link rate in bytes/second.
	Bandwidth float64
}

// Gigabit returns parameters for the paper's Gigabit Ethernet
// interconnection: ~117 MB/s effective payload rate, ~100 µs per message.
func Gigabit() Params {
	return Params{Latency: 100 * time.Microsecond, Bandwidth: 117e6}
}

// TenGigabit returns parameters for a 10 GbE fabric, used in sensitivity
// ablations.
func TenGigabit() Params {
	return Params{Latency: 30 * time.Microsecond, Bandwidth: 1.17e9}
}

// Zero returns a free network (no latency, infinite bandwidth), useful for
// isolating device behaviour in unit tests.
func Zero() Params { return Params{} }

// TransferTime returns the time to move size bytes over the link, including
// the fixed per-message latency. Non-positive sizes cost only the latency.
func (p Params) TransferTime(size int64) time.Duration {
	t := p.Latency
	if size > 0 && p.Bandwidth > 0 {
		t += time.Duration(float64(size) / p.Bandwidth * float64(time.Second))
	}
	return t
}
