package netmodel

import (
	"testing"
	"time"
)

func TestGigabitTransferTime(t *testing.T) {
	p := Gigabit()
	// 117 MB at 117 MB/s = 1s, plus latency.
	got := p.TransferTime(117e6)
	want := time.Second + p.Latency
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	if diff > time.Millisecond {
		t.Fatalf("TransferTime(117MB) = %v, want ~%v", got, want)
	}
}

func TestZeroSizeCostsLatencyOnly(t *testing.T) {
	p := Gigabit()
	if got := p.TransferTime(0); got != p.Latency {
		t.Fatalf("TransferTime(0) = %v, want %v", got, p.Latency)
	}
	if got := p.TransferTime(-5); got != p.Latency {
		t.Fatalf("TransferTime(-5) = %v, want %v", got, p.Latency)
	}
}

func TestZeroNetworkIsFree(t *testing.T) {
	if got := Zero().TransferTime(1 << 30); got != 0 {
		t.Fatalf("Zero network cost = %v, want 0", got)
	}
}

func TestTenGigabitFasterThanGigabit(t *testing.T) {
	size := int64(10 << 20)
	if TenGigabit().TransferTime(size) >= Gigabit().TransferTime(size) {
		t.Fatal("10GbE should be faster than 1GbE")
	}
}

func TestTransferTimeMonotonic(t *testing.T) {
	p := Gigabit()
	prev := time.Duration(-1)
	for _, s := range []int64{0, 1, 1 << 10, 1 << 20, 1 << 30} {
		got := p.TransferTime(s)
		if got < prev {
			t.Fatalf("TransferTime not monotone at %d", s)
		}
		prev = got
	}
}
