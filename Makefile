# Development targets. `make check` is the full pre-merge gate.

GO ?= go

.PHONY: all build vet test race bench check

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over every microbenchmark — compile + smoke, not a measurement.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

check: vet build race bench
