# Development targets. `make check` is the full pre-merge gate.

GO ?= go

.PHONY: all build vet test race bench bench-json bench-serve bench-serve-scale bench-hitrate bench-recovery bench-net bench-metascale alloc-check check

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over every microbenchmark — compile + smoke, not a measurement.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Regenerate the committed machine-readable perf report (micro ns/op +
# allocs/op plus quick-suite wall-clock). Numbers are machine-dependent;
# regenerate when the serve path changes.
BENCH_JSON ?= BENCH_pr4.json
bench-json:
	$(GO) run ./cmd/s4dbench -bench-json $(BENCH_JSON)

# Regenerate the multi-client serve throughput report: the concurrent
# engine on the wall-clock backend at 1/4/16 clients. Numbers are
# machine-dependent; the shape (speedup_max_vs_1) is the signal.
BENCH_SERVE ?= BENCH_pr5.json
bench-serve:
	$(GO) run ./cmd/s4dbench -bench-serve $(BENCH_SERVE)

# Regenerate the GOMAXPROCS contention sweep: read-heavy/mixed/write-heavy
# mixes at GOMAXPROCS 1/2/4/8, epoch (lock-free read path) vs locked
# (stripe-locked baseline). Numbers are machine-dependent; read num_cpu
# before interpreting the procs axis (see README "Serve scaling").
BENCH_SCALE ?= BENCH_pr6.json
bench-serve-scale:
	$(GO) run ./cmd/s4dbench -bench-serve-scale $(BENCH_SCALE)

# Regenerate the cache-policy hit-rate report: the policy × workload lab
# (clean-lru / s3fifo / tinylfu over zipf, ior-rand, hpio, tileio, mixed)
# plus the adaptive shifting-workload bench. The tables are deterministic;
# only the wall-clock stamp varies across machines.
BENCH_HITRATE ?= BENCH_pr7.json
bench-hitrate:
	$(GO) run ./cmd/s4dbench -bench-hitrate $(BENCH_HITRATE)

# Regenerate the warm-restart report: cold / warm / torn-WAL / bit-rotted
# snapshot restarts, with recovered residency, quarantine counters,
# virtual time-to-warm and post-restart hit rates. Fully deterministic
# (virtual time); only the wall-clock stamp varies across machines.
BENCH_RECOVERY ?= BENCH_pr8.json
bench-recovery:
	$(GO) run ./cmd/s4dbench -bench-recovery $(BENCH_RECOVERY)

# Regenerate the network frontend tail-latency report: loopback TCP
# connections through netserve (conns × pipeline depth, up to 128
# connections), p50/p99/p999 per cell, plus the capped-budget overload
# cell demonstrating BUSY backpressure. Numbers are machine-dependent;
# the shape (pipeline_speedup > 1, bounded overload p999) is the signal.
BENCH_NET ?= BENCH_pr9.json
bench-net:
	$(GO) run ./cmd/s4dbench -bench-net $(BENCH_NET)

# Regenerate the metadata-at-scale report: legacy vs packed bytes/extent
# at 100k and 1M distinct files, the resident-budget sweep (spill and
# fault-in counters, lookup p50/p99), and the budgeted-vs-unbounded
# engine hit-rate cells. Heap numbers are machine-dependent; the
# accounting columns and hit-rate delta are deterministic.
BENCH_META ?= BENCH_pr10.json
bench-metascale:
	$(GO) run ./cmd/s4dbench -bench-metascale $(BENCH_META)

# Just the allocation-regression tests: pins the performance-mode serve
# and identify paths, the metadata store's durable commit path, the
# striped-table dirty/pending counters, the packed-extent lookup and
# resident-budget spill bookkeeping, every cache policy's
# touch/eviction paths, the latency histogram's record path, and the
# network server's decode→dispatch→encode request path, at 0 allocs/op.
alloc-check:
	$(GO) test -run 'ZeroAllocs' ./internal/pfs/ ./internal/core/ ./internal/iotrace/ ./internal/kvstore/ ./internal/dmt/ ./internal/cdt/ ./internal/cachespace/ ./internal/netserve/ ./internal/bench/ -v

check: vet build race bench
