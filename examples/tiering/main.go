// Tiering: the paper's stated future work (§II.B) — "SSDs are a
// complement of memory cache and can be served as an extension of memory
// cache" — realized as a three-tier stack: a client-side memory cache
// over S4D-Cache over the HDD parallel file system.
//
// A re-referencing random-read workload runs on three deployments. The
// memory tier captures re-references at DRAM latency, the SSD tier
// captures capacity misses, and the HDD tier serves the bulk.
package main

import (
	"fmt"
	"log"

	"s4dcache"
)

const (
	datasetSize = 32 << 20
	probeSize   = 16 << 10
	passes      = 3
)

func main() {
	fmt.Printf("re-referencing random %dKB reads over a %dMB dataset, %d passes:\n\n",
		probeSize>>10, datasetSize>>20, passes)
	fmt.Printf("%-24s", "deployment")
	for p := 1; p <= passes; p++ {
		fmt.Printf("  pass%d MB/s", p)
	}
	fmt.Println()
	run("HDD only (stock)", func(o *s4dcache.Options) { o.DisableCache = true })
	run("SSD cache (S4D)", nil)
	run("DRAM + SSD + HDD", func(o *s4dcache.Options) {
		o.MemoryCacheBytes = datasetSize / 4
	})
}

func run(name string, mutate func(*s4dcache.Options)) {
	opts := s4dcache.SmallTestbed()
	opts.CacheCapacity = datasetSize
	if mutate != nil {
		mutate(&opts)
	}
	sys, err := s4dcache.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Load the dataset, then probe it repeatedly with the same random set.
	if _, err := sys.RunIOR("data", datasetSize, 1<<20, false, true); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s", name)
	for p := 0; p < passes; p++ {
		res, err := sys.RunIOR("data", datasetSize, probeSize, true, false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %10.1f", res.ThroughputMBps)
		sys.DrainRebuild() // let the SSD tier populate between passes
	}
	fmt.Println()
}
