// Analytics: a query engine repeatedly probes a large on-disk dataset with
// small random point lookups — the read-side scenario of the paper's §V.A
// protocol. The first pass runs cold: every probe misses the cache, is
// served by the HDD DServers, and is marked performance-critical (the CDT
// C_flag). The Rebuilder then fetches the marked ranges into the SSD
// CServers, and the second pass of the same query mix is served at flash
// speed — the paper's "second run" read improvement (up to +184% in
// Fig. 6b).
package main

import (
	"fmt"
	"log"

	"s4dcache"
)

const (
	datasetSize = 64 << 20
	probeSize   = 16 << 10
)

func main() {
	opts := s4dcache.SmallTestbed()
	// The probe working set must fit the cache for the warm pass to hit;
	// random probes with replacement touch ~63% of the dataset.
	opts.CacheCapacity = datasetSize
	sys, err := s4dcache.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Ingest: bulk-load the dataset sequentially (stays on the DServers —
	// sequential loads are not performance-critical).
	load, err := sys.RunIOR("warehouse.tbl", datasetSize, 1<<20, false, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bulk load      : %7.1f MB/s (%v)\n", load.ThroughputMBps, load.Elapsed)
	ingest := sys.Stats()
	fmt.Printf("  load cache share: %.0f%% (sequential data is not critical)\n",
		ingest.CacheWriteShare*100)

	// Query pass 1 (cold): random point lookups.
	cold, err := sys.RunIOR("warehouse.tbl", datasetSize, probeSize, true, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query pass 1   : %7.1f MB/s (%v) — cold, HDD-bound\n",
		cold.ThroughputMBps, cold.Elapsed)

	// The Rebuilder moves the marked ranges into the cache.
	sys.DrainRebuild()
	st := sys.Stats()
	fmt.Printf("rebuilder      : fetched %d ranges into the SSD cache\n", st.Fetches)

	// Query pass 2 (warm): the same mix, now served by the CServers.
	warm, err := sys.RunIOR("warehouse.tbl", datasetSize, probeSize, true, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query pass 2   : %7.1f MB/s (%v) — %.1fx faster\n",
		warm.ThroughputMBps, warm.Elapsed,
		warm.ThroughputMBps/cold.ThroughputMBps)

	final := sys.Stats()
	fmt.Printf("cache read share over both passes: %.0f%%\n", final.CacheReadShare*100)
}
