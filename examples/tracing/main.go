// Tracing: reproduce the paper's IOSIG-style analysis (Table III) on a
// live system. A mixed workload of sequential streams and random updates
// runs under S4D-Cache with tracing enabled; afterwards the trace shows
// how the Redirector split traffic between the HDD DServers and the SSD
// CServers, and how sequential the surviving DServer stream is.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"s4dcache"
)

func main() {
	opts := s4dcache.SmallTestbed()
	opts.Trace = true
	sys, err := s4dcache.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	f := sys.Open("mixed.dat")
	rng := rand.New(rand.NewSource(99))
	seq := bytes.Repeat([]byte{1}, 64<<10)
	small := bytes.Repeat([]byte{2}, 16<<10)

	// Interleave: rank 0 streams sequentially; ranks 1-3 fire random
	// small updates into a far region.
	seqOff := int64(0)
	for i := 0; i < 120; i++ {
		if i%2 == 0 {
			if err := f.WriteAt(0, seq, seqOff); err != nil {
				log.Fatal(err)
			}
			seqOff += int64(len(seq))
			continue
		}
		off := 1<<30 + rng.Int63n(512<<20)/(16<<10)*(16<<10)
		if err := f.WriteAt(1+i%3, small, off); err != nil {
			log.Fatal(err)
		}
	}

	st := sys.Stats()
	fmt.Println("IOSIG-style trace analysis (paper Table III):")
	fmt.Printf("  DServers share of bytes : %5.1f%%\n", st.DServerShare*100)
	fmt.Printf("  CServers share of bytes : %5.1f%%\n", st.CServerShare*100)
	fmt.Printf("  DServer sequentiality   : %5.2f\n", st.DServerSequentiality)
	fmt.Println()
	fmt.Println("routing detail:")
	fmt.Printf("  cache write share       : %5.1f%% of application bytes\n", st.CacheWriteShare*100)
	fmt.Printf("  admissions / failures   : %d / %d\n", st.Admissions, st.AdmitFailures)
	fmt.Printf("  DMT mappings            : %d extents, %d KB cached\n",
		st.DMTEntries, st.CacheUsedBytes>>10)
	fmt.Println()
	fmt.Println("the random small updates moved to the CServers; the DServer")
	fmt.Println("stream is the sequential bulk plus the Rebuilder's write-backs")
	fmt.Println("(the paper's Table III observation).")
}
