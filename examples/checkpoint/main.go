// Checkpoint: an HPC application periodically dumps per-rank state. Each
// rank's checkpoint slice is written with many small, effectively random
// records (metadata headers, strided member dumps) — the access pattern
// the paper's §I identifies as the number one performance killer of
// HDD-based parallel file systems.
//
// The example writes the same checkpoint twice — once on the stock I/O
// system and once under S4D-Cache — and compares the virtual time each
// deployment needs, the burst-buffer effect the paper's related work
// (Liu et al. [22]) describes.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"time"

	"s4dcache"
)

const (
	ranks      = 4
	records    = 50        // records per rank per checkpoint
	recordSize = 32 << 10  // small strided member dumps
	sliceSize  = 256 << 20 // per-rank checkpoint region
	epochs     = 3
)

func main() {
	stockBurst, stockTotal := runCheckpoints(true)
	cachedBurst, cachedTotal := runCheckpoints(false)
	fmt.Printf("\n%d checkpoint epochs, %d ranks x %d records x %d KB:\n",
		epochs, ranks, records, recordSize>>10)
	fmt.Printf("  burst (application-visible) time:\n")
	fmt.Printf("    stock I/O system : %v\n", stockBurst)
	fmt.Printf("    with S4D-Cache   : %v  (%.1fx faster)\n",
		cachedBurst, float64(stockBurst)/float64(cachedBurst))
	fmt.Printf("  total time including background destage:\n")
	fmt.Printf("    stock I/O system : %v\n", stockTotal)
	fmt.Printf("    with S4D-Cache   : %v\n", cachedTotal)
	fmt.Println()
	fmt.Println("the cache absorbs each burst at SSD speed and destages while")
	fmt.Println("the application computes — the burst-buffer effect (paper [22]).")
}

// runCheckpoints returns (application-visible burst time, total time).
func runCheckpoints(stock bool) (time.Duration, time.Duration) {
	opts := s4dcache.SmallTestbed()
	opts.Ranks = ranks
	opts.DisableCache = stock
	opts.CacheCapacity = 128 << 20
	sys, err := s4dcache.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	f := sys.Open("checkpoint.ckpt")
	record := bytes.Repeat([]byte{0x42}, recordSize)
	rng := rand.New(rand.NewSource(3))

	var burst time.Duration
	for epoch := 0; epoch < epochs; epoch++ {
		// All ranks dump concurrently: issue asynchronously, then wait —
		// the requests overlap in virtual time exactly as MPI ranks do.
		start := sys.VirtualTime()
		var pendings []*s4dcache.Pending
		for r := 0; r < ranks; r++ {
			base := int64(r) * sliceSize
			for i := 0; i < records; i++ {
				off := base + rng.Int63n(sliceSize-recordSize)/recordSize*recordSize
				p, err := f.WriteAtAsync(r, record, off)
				if err != nil {
					log.Fatal(err)
				}
				pendings = append(pendings, p)
			}
		}
		sys.Wait(pendings...)
		burst += sys.VirtualTime() - start
		// Between epochs the application computes; the Rebuilder uses the
		// idle time to destage the absorbed burst to the HDD servers.
		sys.DrainRebuild()
	}
	st := sys.Stats()
	label := "s4d"
	if stock {
		label = "stock"
	}
	fmt.Printf("[%s] cache-share=%.0f%% admissions=%d flushes=%d burst=%v total=%v\n",
		label, st.CacheWriteShare*100, st.Admissions, st.Flushes, burst, sys.VirtualTime())
	return burst, sys.VirtualTime()
}
