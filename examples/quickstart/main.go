// Quickstart: build a small S4D-Cache deployment, write a mix of
// sequential and random data, and watch the selective cache route the
// random (performance-critical) requests to the SSD CServers while the
// sequential bulk stays on the HDD DServers.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"s4dcache"
)

func main() {
	sys, err := s4dcache.New(s4dcache.SmallTestbed())
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	f := sys.Open("dataset")

	// Rank 0 streams a sequential 8 MB region — large, well-striped
	// traffic that the HDD servers handle at full parallelism.
	seq := bytes.Repeat([]byte{0xAB}, 256<<10)
	for i := int64(0); i < 32; i++ {
		if err := f.WriteAt(0, seq, i*int64(len(seq))); err != nil {
			log.Fatal(err)
		}
	}

	// Ranks 1-3 issue small random updates — the HDD killer workload the
	// paper motivates (§I). The Data Identifier computes each request's
	// benefit (Eq. 8) and the Redirector absorbs them in the cache.
	rng := rand.New(rand.NewSource(7))
	small := bytes.Repeat([]byte{0xCD}, 16<<10)
	for i := 0; i < 60; i++ {
		off := 64<<20 + rng.Int63n(1<<30)/(16<<10)*(16<<10)
		if err := f.WriteAt(1+i%3, small, off); err != nil {
			log.Fatal(err)
		}
	}

	st := sys.Stats()
	fmt.Println("after the write burst:")
	fmt.Printf("  requests                 : %d writes\n", st.Writes)
	fmt.Printf("  absorbed by SSD cache    : %.0f%% of bytes\n", st.CacheWriteShare*100)
	fmt.Printf("  cache admissions         : %d (failures: %d)\n", st.Admissions, st.AdmitFailures)
	fmt.Printf("  cache used / dirty       : %d / %d KB\n", st.CacheUsedBytes>>10, st.CacheDirtyBytes>>10)
	fmt.Printf("  DMT mappings             : %d\n", st.DMTEntries)
	fmt.Printf("  virtual time             : %v\n", sys.VirtualTime())

	// The Rebuilder flushes dirty cache data back to the DServers in the
	// background; drain it explicitly here.
	sys.DrainRebuild()
	st = sys.Stats()
	fmt.Println("after draining the Rebuilder:")
	fmt.Printf("  flushes                  : %d\n", st.Flushes)
	fmt.Printf("  cache dirty              : %d KB\n", st.CacheDirtyBytes>>10)

	// Reads are transparent: cached ranges come from the CServers, the
	// rest from the DServers — and the data always matches what was
	// written.
	got := make([]byte, 16<<10)
	off := int64(64<<20) + 0 // one of the random offsets' neighborhood
	if err := f.ReadAt(2, got, off); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read-back OK, %d bytes at offset %d\n", len(got), off)
	fmt.Printf("final virtual time: %v\n", sys.VirtualTime())
}
