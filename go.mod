module s4dcache

go 1.22
