package s4dcache

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func newSmall(t *testing.T, mutate func(*Options)) *System {
	t.Helper()
	opts := SmallTestbed()
	if mutate != nil {
		mutate(&opts)
	}
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return sys
}

func TestNewValidation(t *testing.T) {
	opts := SmallTestbed()
	opts.Ranks = 0
	if _, err := New(opts); err == nil {
		t.Fatal("zero ranks accepted")
	}
	opts = SmallTestbed()
	opts.DServers = 0
	if _, err := New(opts); err == nil {
		t.Fatal("zero DServers accepted")
	}
	opts = SmallTestbed()
	opts.CacheCapacity = 0
	if _, err := New(opts); err == nil {
		t.Fatal("zero cache capacity accepted on a cached system")
	}
}

func TestPaperTestbedConstructs(t *testing.T) {
	sys, err := New(PaperTestbed())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if sys.Ranks() != 32 {
		t.Fatalf("Ranks = %d, want 32", sys.Ranks())
	}
}

func TestSyncRoundTrip(t *testing.T) {
	sys := newSmall(t, nil)
	f := sys.Open("data")
	payload := []byte("the cache is selective")
	if err := f.WriteAt(0, payload, 1<<20); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if err := f.ReadAt(1, got, 1<<20); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip = %q", got)
	}
	if sys.VirtualTime() == 0 {
		t.Fatal("virtual clock did not advance")
	}
}

func TestAsyncOverlap(t *testing.T) {
	sys := newSmall(t, nil)
	f := sys.Open("data")
	var pendings []*Pending
	for rank := 0; rank < sys.Ranks(); rank++ {
		p, err := f.WriteAtAsync(rank, bytes.Repeat([]byte{byte(rank)}, 64<<10), int64(rank)<<20)
		if err != nil {
			t.Fatal(err)
		}
		pendings = append(pendings, p)
	}
	for _, p := range pendings {
		if p.Done() {
			t.Fatal("async write completed before Wait")
		}
	}
	sys.Wait(pendings...)
	for _, p := range pendings {
		if !p.Done() {
			t.Fatal("Wait returned with pending work")
		}
	}
	// Verify one rank's data.
	got := make([]byte, 64<<10)
	if err := f.ReadAt(2, got, 2<<20); err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 || got[len(got)-1] != 2 {
		t.Fatal("async write payload lost")
	}
}

func TestAsyncValidation(t *testing.T) {
	sys := newSmall(t, nil)
	f := sys.Open("data")
	if _, err := f.WriteAtAsync(0, nil, 0); err == nil {
		t.Fatal("nil payload accepted")
	}
	if _, err := f.ReadAtAsync(0, nil, 0); err == nil {
		t.Fatal("nil buffer accepted")
	}
	if _, err := f.WriteAtAsync(99, []byte("x"), 0); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if _, err := f.WriteAtAsync(0, []byte("x"), -1); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestWriteZeroes(t *testing.T) {
	sys := newSmall(t, nil)
	f := sys.Open("perf")
	p, err := f.WriteZeroes(0, 0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	sys.Wait(p)
	if !p.Done() {
		t.Fatal("timing-only write never completed")
	}
	if f.Size() == 0 && sys.Stats().CacheUsedBytes == 0 {
		t.Fatal("write left no trace on either tier")
	}
}

func TestStatsRouting(t *testing.T) {
	sys := newSmall(t, nil)
	f := sys.Open("data")
	// Random small writes at far offsets: critical, cached.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 40; i++ {
		off := rng.Int63n(1<<30) / (16 << 10) * (16 << 10)
		if err := f.WriteAt(i%sys.Ranks(), bytes.Repeat([]byte{1}, 16<<10), off); err != nil {
			t.Fatal(err)
		}
	}
	st := sys.Stats()
	if st.Writes != 40 {
		t.Fatalf("Writes = %d", st.Writes)
	}
	if st.CacheWriteShare < 0.5 {
		t.Fatalf("CacheWriteShare = %.2f, want most random writes cached", st.CacheWriteShare)
	}
	if st.Admissions == 0 || st.DMTEntries == 0 || st.CacheUsedBytes == 0 {
		t.Fatalf("cache accounting empty: %+v", st)
	}
	if st.CServerShare == 0 {
		t.Fatal("trace distribution empty despite Trace option")
	}
}

func TestRebuildFlushesDirtyData(t *testing.T) {
	sys := newSmall(t, nil)
	f := sys.Open("data")
	if err := f.WriteAt(0, bytes.Repeat([]byte{7}, 16<<10), 1<<30); err != nil {
		t.Fatal(err)
	}
	if sys.Stats().CacheDirtyBytes == 0 {
		t.Fatal("critical write not dirty in cache")
	}
	sys.DrainRebuild()
	if sys.Stats().CacheDirtyBytes != 0 {
		t.Fatal("drain left dirty bytes")
	}
	if sys.Stats().Flushes == 0 {
		t.Fatal("no flushes recorded")
	}
	// Data is now on the DServers too.
	if f.Size() < 1<<30+16<<10 {
		t.Fatalf("flushed file size = %d", f.Size())
	}
}

func TestDisableCacheBaseline(t *testing.T) {
	sys := newSmall(t, func(o *Options) { o.DisableCache = true })
	f := sys.Open("data")
	if err := f.WriteAt(0, bytes.Repeat([]byte{1}, 16<<10), 1<<30); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.CacheWriteShare != 0 || st.Admissions != 0 {
		t.Fatalf("stock system cached: %+v", st)
	}
	sys.Rebuild()      // must be a no-op
	sys.DrainRebuild() // must be a no-op
	got := make([]byte, 16<<10)
	if err := f.ReadAt(0, got, 1<<30); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatal("stock round trip failed")
	}
}

func TestCacheEverythingOption(t *testing.T) {
	sys := newSmall(t, func(o *Options) { o.CacheEverything = true })
	f := sys.Open("data")
	// Sequential write from 0: not critical, but cached under PolicyAll.
	if err := f.WriteAt(0, bytes.Repeat([]byte{1}, 16<<10), 0); err != nil {
		t.Fatal(err)
	}
	if sys.Stats().Admissions != 1 {
		t.Fatalf("CacheEverything did not cache: %+v", sys.Stats())
	}
}

func TestRunIORHelper(t *testing.T) {
	sys := newSmall(t, nil)
	res, err := sys.RunIOR("ior.dat", 8<<20, 64<<10, false, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 8<<20 || res.Requests != 128 {
		t.Fatalf("result = %+v", res)
	}
	if res.ThroughputMBps <= 0 || res.Elapsed <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	// Random read on the second run is faster (cache-assisted).
	first, err := sys.RunIOR("ior.dat", 8<<20, 16<<10, true, false)
	if err != nil {
		t.Fatal(err)
	}
	sys.DrainRebuild()
	second, err := sys.RunIOR("ior.dat", 8<<20, 16<<10, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if second.ThroughputMBps <= first.ThroughputMBps {
		t.Fatalf("second run (%.1f) not faster than first (%.1f)",
			second.ThroughputMBps, first.ThroughputMBps)
	}
}

// Property: the public API preserves data across random write/read/rebuild
// interleavings, against a flat reference model.
func TestPublicAPIConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		opts := SmallTestbed()
		opts.CacheCapacity = 256 << 10
		sys, err := New(opts)
		if err != nil {
			return false
		}
		defer sys.Close()
		file := sys.Open("f")
		const space = 128 << 10
		ref := make([]byte, space)
		for i := 0; i < 20; i++ {
			off := rng.Int63n(space - 1)
			size := rng.Int63n(minI64(16<<10, space-off)) + 1
			switch rng.Intn(4) {
			case 0:
				got := make([]byte, size)
				if file.ReadAt(rng.Intn(4), got, off) != nil {
					return false
				}
				if !bytes.Equal(got, ref[off:off+size]) {
					return false
				}
			case 1:
				sys.Rebuild()
			default:
				data := make([]byte, size)
				rng.Read(data)
				if file.WriteAt(rng.Intn(4), data, off) != nil {
					return false
				}
				copy(ref[off:off+size], data)
			}
		}
		sys.DrainRebuild()
		got := make([]byte, space)
		if file.ReadAt(0, got, 0) != nil {
			return false
		}
		return bytes.Equal(got, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
