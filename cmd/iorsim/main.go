// Command iorsim runs an IOR-style benchmark (paper reference [5]) on the
// simulated testbed: n processes share one file, each owning 1/n of it,
// issuing fixed-size sequential or random requests.
//
// Usage:
//
//	iorsim [-procs 16] [-filesize 1073741824] [-req 16384] [-random]
//	       [-read] [-stock] [-cache-frac 0.2] [-dservers 8] [-cservers 4]
package main

import (
	"flag"
	"fmt"
	"os"

	"s4dcache/internal/cluster"
	"s4dcache/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		procs     = flag.Int("procs", 16, "number of MPI processes")
		fileSize  = flag.Int64("filesize", 1<<30, "shared file size in bytes")
		reqSize   = flag.Int64("req", 16<<10, "request size in bytes")
		random    = flag.Bool("random", false, "random offsets (default sequential)")
		read      = flag.Bool("read", false, "read instead of write")
		stock     = flag.Bool("stock", false, "disable S4D-Cache (baseline)")
		cacheFrac = flag.Float64("cache-frac", 0.2, "cache capacity as a fraction of the file size")
		dservers  = flag.Int("dservers", 8, "number of HDD file servers")
		cservers  = flag.Int("cservers", 4, "number of SSD cache servers")
		seed      = flag.Int64("seed", 1, "random stream seed")
	)
	flag.Parse()

	params := cluster.Default()
	params.DServers = *dservers
	params.CServers = *cservers
	params.CacheCapacity = int64(float64(*fileSize) * *cacheFrac)

	var tb *cluster.Testbed
	var err error
	if *stock {
		tb, err = cluster.NewStock(params)
	} else {
		tb, err = cluster.NewS4D(params)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "iorsim: %v\n", err)
		return 1
	}
	comm, err := tb.Comm(*procs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iorsim: %v\n", err)
		return 1
	}
	cfg := workload.IORConfig{
		Ranks: *procs, FileSize: *fileSize, RequestSize: *reqSize,
		Random: *random, Seed: *seed,
	}
	var res workload.Result
	finished := false
	if err := workload.RunIOR(comm, cfg, !*read, func(r workload.Result) { res = r; finished = true }); err != nil {
		fmt.Fprintf(os.Stderr, "iorsim: %v\n", err)
		return 1
	}
	tb.Eng.RunWhile(func() bool { return !finished })
	tb.Close()

	mode := "write"
	if *read {
		mode = "read"
	}
	pattern := "sequential"
	if *random {
		pattern = "random"
	}
	fmt.Printf("iorsim: %s %s, %d procs, %d B requests, %d B file\n",
		pattern, mode, *procs, *reqSize, *fileSize)
	fmt.Printf("  virtual time : %v\n", res.Elapsed())
	fmt.Printf("  requests     : %d\n", res.Requests)
	fmt.Printf("  throughput   : %.1f MB/s\n", res.ThroughputMBps())
	if tb.S4D != nil {
		st := tb.S4D.Stats()
		fmt.Printf("  cache shares : write %.1f%%, read %.1f%%\n",
			st.CacheWriteShare()*100, st.CacheReadShare()*100)
		fmt.Printf("  admissions   : %d (failures %d), flushes %d, fetches %d\n",
			st.Admissions, st.AdmitFailures, st.Flushes, st.Fetches)
	}
	return 0
}
