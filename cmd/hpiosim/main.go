// Command hpiosim runs an HPIO-style benchmark (paper reference [31]) on
// the simulated testbed: noncontiguous regions with configurable count,
// size and spacing.
package main

import (
	"flag"
	"fmt"
	"os"

	"s4dcache/internal/cluster"
	"s4dcache/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		procs   = flag.Int("procs", 16, "number of MPI processes")
		regions = flag.Int("regions", 4096, "regions per process")
		size    = flag.Int64("size", 8<<10, "region size in bytes")
		spacing = flag.Int64("spacing", 0, "region spacing (hole) in bytes")
		read    = flag.Bool("read", false, "read instead of write")
		stock   = flag.Bool("stock", false, "disable S4D-Cache (baseline)")
	)
	flag.Parse()

	cfg := workload.HPIOConfig{
		Ranks: *procs, RegionCount: *regions,
		RegionSize: *size, RegionSpacing: *spacing,
	}
	dataSize := int64(*procs) * int64(*regions) * *size
	params := cluster.Default()
	params.CacheCapacity = dataSize / 5

	var tb *cluster.Testbed
	var err error
	if *stock {
		tb, err = cluster.NewStock(params)
	} else {
		tb, err = cluster.NewS4D(params)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpiosim: %v\n", err)
		return 1
	}
	comm, err := tb.Comm(*procs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpiosim: %v\n", err)
		return 1
	}
	var res workload.Result
	finished := false
	if err := workload.RunHPIO(comm, cfg, !*read, func(r workload.Result) { res = r; finished = true }); err != nil {
		fmt.Fprintf(os.Stderr, "hpiosim: %v\n", err)
		return 1
	}
	tb.Eng.RunWhile(func() bool { return !finished })
	tb.Close()

	fmt.Printf("hpiosim: %d procs, %d regions x %d B, spacing %d B\n",
		*procs, *regions, *size, *spacing)
	fmt.Printf("  virtual time : %v\n", res.Elapsed())
	fmt.Printf("  throughput   : %.1f MB/s\n", res.ThroughputMBps())
	if tb.S4D != nil {
		st := tb.S4D.Stats()
		fmt.Printf("  cache shares : write %.1f%%, read %.1f%%\n",
			st.CacheWriteShare()*100, st.CacheReadShare()*100)
	}
	return 0
}
