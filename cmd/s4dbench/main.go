// Command s4dbench regenerates the paper's tables and figures (and the
// DESIGN.md ablations) on the simulated testbed.
//
// Usage:
//
//	s4dbench [-exp id[,id...]] [-scale f] [-ranks n] [-parallel n] [-full] [-list]
//	         [-faults plan] [-fault-seed n]
//	         [-bench-json file] [-bench-hitrate file] [-bench-recovery file]
//	         [-bench-serve file] [-serve-clients list] [-serve-window d]
//	         [-bench-serve-scale file] [-serve-procs list]
//	         [-bench-net file] [-net-conns list] [-net-depths list]
//	         [-cpuprofile file] [-memprofile file] [-trace file]
//	         [-mutexprofile file] [-blockprofile file]
//
// By default every experiment runs at the quick scale (~1/250 of the
// paper's data volume, all ratios preserved). -full uses the published
// sizes and process counts; expect a long runtime.
//
// -faults injects a deterministic failure schedule (transient I/O
// errors, CServer crash/restart, see internal/faults for the plan
// syntax) and emits the availability/degradation table; with no explicit
// -exp it runs just that experiment. -fault-seed varies the random
// streams the plan draws from. The table is byte-identical for a given
// (plan, seed) at every -parallel setting.
//
// -bench-json runs the hot-path micro-benchmarks plus the experiment
// suite and writes a machine-readable BENCH_*.json perf report instead of
// the tables. The profiling flags capture pprof CPU/heap profiles and a
// runtime trace of whatever the invocation runs.
//
// -bench-hitrate runs the cache-policy hit-rate lab (policy × workload
// sweep) and the adaptive shifting-workload bench, writing their JSON
// report — the BENCH_pr7.json generator (see `make bench-hitrate`).
//
// -bench-recovery runs the warm-restart family: write/drain/read, durable
// snapshot, crash, and a restart per scenario (cold, warm, torn WAL,
// bit-rotted store snapshot), reporting recovered residency, quarantine
// counters, virtual time-to-warm and the post-restart hit rate — the
// BENCH_pr8.json generator (see `make bench-recovery`).
//
// -bench-serve runs the serve/* multi-client throughput family: real
// client goroutines (-serve-clients counts, -serve-window per point)
// driving the concurrent S4D engine on the wall-clock backend, reporting
// aggregate ops/s per client count. The experiment tables always run on
// the deterministic virtual-time scheduler; -bench-serve and
// -bench-serve-scale are the only modes that exercise the wall-clock one.
//
// -bench-serve-scale runs the serve/scale contention family: a GOMAXPROCS
// sweep (-serve-procs) over read-heavy/mixed/write-heavy mixes, in both
// epoch (lock-free read path) and locked (stripe-locked baseline) modes —
// the BENCH_pr6.json generator. -mutexprofile and -blockprofile capture
// contention evidence for any invocation.
//
// -bench-net runs the serve/net tail-latency family: real TCP connections
// over loopback into the netserve frontend (-net-conns connection counts ×
// -net-depths pipeline depths), reporting ops/s and p50/p99/p999 per cell
// plus a capped-budget overload cell demonstrating BUSY backpressure — the
// BENCH_pr9.json generator (see `make bench-net`).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"s4dcache/internal/bench"
	"s4dcache/internal/faults"
	"s4dcache/internal/profiling"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		expFlag      = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		scale        = flag.Float64("scale", 0, "file-size scale factor (0 = quick default)")
		ranks        = flag.Int("ranks", 0, "base process count (0 = scale default)")
		parallel     = flag.Int("parallel", 0, "experiment cells simulated concurrently (0 = GOMAXPROCS)")
		full         = flag.Bool("full", false, "use the paper's published sizes (slow)")
		listOnly     = flag.Bool("list", false, "list experiment ids and exit")
		faultPlan    = flag.String("faults", "", "fault-injection plan for the 'faults' experiment (see internal/faults)")
		faultSeed    = flag.Int64("fault-seed", 1, "seed for the fault plan's random streams")
		benchJSON    = flag.String("bench-json", "", "write a machine-readable perf report to this file and exit")
		benchHit     = flag.String("bench-hitrate", "", "run the cache-policy hit-rate lab and the adaptive shift bench, write their JSON report to this file")
		benchRecov   = flag.String("bench-recovery", "", "run the warm-restart family (cold/warm/damaged-metadata restarts) and write its JSON report to this file")
		benchServe   = flag.String("bench-serve", "", "run the serve/* multi-client throughput family and write its JSON report to this file")
		serveClients = flag.String("serve-clients", "1,4,16", "client-goroutine counts for -bench-serve")
		serveWindow  = flag.Duration("serve-window", 400*time.Millisecond, "measured window per -bench-serve point")
		benchScale   = flag.String("bench-serve-scale", "", "run the serve/scale GOMAXPROCS contention sweep and write its JSON report to this file")
		serveProcs   = flag.String("serve-procs", "1,2,4,8", "GOMAXPROCS values for -bench-serve-scale")
		benchNet     = flag.String("bench-net", "", "run the serve/net loopback tail-latency family and write its JSON report to this file")
		benchMeta    = flag.String("bench-metascale", "", "run the metadata-at-scale family (100k/1M files, resident-budget sweep) and write its JSON report to this file")
		metaFiles    = flag.String("meta-files", "100000,1000000", "distinct-file counts for -bench-metascale")
		metaExtents  = flag.Int("meta-extents", 8, "mapped extents per file for -bench-metascale")
		metaLookups  = flag.Int("meta-lookups", 200000, "random lookups per -bench-metascale cell")
		netConns     = flag.String("net-conns", "8,32,128", "connection counts for -bench-net")
		netDepths    = flag.String("net-depths", "1,4", "pipeline depths for -bench-net")
		cpuProf      = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf      = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
		tracePath    = flag.String("trace", "", "write a runtime execution trace to this file")
		mutexProf    = flag.String("mutexprofile", "", "write a pprof mutex-contention profile to this file at exit")
		blockProf    = flag.String("blockprofile", "", "write a pprof goroutine-blocking profile to this file at exit")
	)
	flag.Parse()

	if *listOnly {
		for _, e := range bench.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return 0
	}

	stopProf, err := profiling.Config{
		CPUProfile:   *cpuProf,
		MemProfile:   *memProf,
		Trace:        *tracePath,
		MutexProfile: *mutexProf,
		BlockProfile: *blockProf,
	}.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "s4dbench: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "s4dbench: %v\n", err)
		}
	}()

	cfg := bench.Quick()
	if *full {
		cfg = bench.Paper()
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *ranks > 0 {
		cfg.Ranks = *ranks
	}
	cfg.Parallel = *parallel
	cfg.FaultSeed = *faultSeed
	if *faultPlan != "" {
		plan, err := faults.Parse(*faultPlan)
		if err != nil {
			fmt.Fprintf(os.Stderr, "s4dbench: -faults: %v\n", err)
			return 2
		}
		cfg.FaultPlan = plan
		if *expFlag == "all" {
			// A plan was given but no experiment selection: run the fault
			// experiment it parameterizes.
			*expFlag = "faults"
		}
	}

	if *benchServe != "" {
		var clients []int
		for _, s := range strings.Split(*serveClients, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "s4dbench: -serve-clients: bad count %q\n", s)
				return 2
			}
			clients = append(clients, n)
		}
		f, err := os.Create(*benchServe)
		if err != nil {
			fmt.Fprintf(os.Stderr, "s4dbench: %v\n", err)
			return 1
		}
		serveCfg := bench.ServeConfig{Clients: clients, Window: *serveWindow}
		if err := bench.EmitServeJSON(f, serveCfg, os.Stderr); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "s4dbench: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "s4dbench: %v\n", err)
			return 1
		}
		fmt.Printf("s4dbench: wrote %s\n", *benchServe)
		return 0
	}

	if *benchScale != "" {
		var procs []int
		for _, s := range strings.Split(*serveProcs, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "s4dbench: -serve-procs: bad value %q\n", s)
				return 2
			}
			procs = append(procs, n)
		}
		f, err := os.Create(*benchScale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "s4dbench: %v\n", err)
			return 1
		}
		scaleCfg := bench.ServeScaleConfig{Procs: procs, Window: *serveWindow}
		if err := bench.EmitServeScaleJSON(f, scaleCfg, os.Stderr); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "s4dbench: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "s4dbench: %v\n", err)
			return 1
		}
		fmt.Printf("s4dbench: wrote %s\n", *benchScale)
		return 0
	}

	if *benchNet != "" {
		parseList := func(name, val string) ([]int, bool) {
			var out []int
			for _, s := range strings.Split(val, ",") {
				var n int
				if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil || n <= 0 {
					fmt.Fprintf(os.Stderr, "s4dbench: %s: bad value %q\n", name, s)
					return nil, false
				}
				out = append(out, n)
			}
			return out, true
		}
		conns, ok := parseList("-net-conns", *netConns)
		if !ok {
			return 2
		}
		depths, ok := parseList("-net-depths", *netDepths)
		if !ok {
			return 2
		}
		f, err := os.Create(*benchNet)
		if err != nil {
			fmt.Fprintf(os.Stderr, "s4dbench: %v\n", err)
			return 1
		}
		netCfg := bench.ServeNetConfig{Conns: conns, Depths: depths, Window: *serveWindow}
		if err := bench.EmitServeNetJSON(f, netCfg, os.Stderr); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "s4dbench: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "s4dbench: %v\n", err)
			return 1
		}
		fmt.Printf("s4dbench: wrote %s\n", *benchNet)
		return 0
	}

	if *benchMeta != "" {
		var files []int
		for _, s := range strings.Split(*metaFiles, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "s4dbench: -meta-files: bad count %q\n", s)
				return 2
			}
			files = append(files, n)
		}
		f, err := os.Create(*benchMeta)
		if err != nil {
			fmt.Fprintf(os.Stderr, "s4dbench: %v\n", err)
			return 1
		}
		msc := bench.DefaultMetaScale()
		msc.Files = files
		if *metaExtents > 0 {
			msc.ExtentsPerFile = *metaExtents
		}
		if *metaLookups > 0 {
			msc.Lookups = *metaLookups
		}
		if err := bench.EmitMetaScaleJSON(f, msc, os.Stderr); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "s4dbench: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "s4dbench: %v\n", err)
			return 1
		}
		fmt.Printf("s4dbench: wrote %s\n", *benchMeta)
		return 0
	}

	if *benchHit != "" {
		f, err := os.Create(*benchHit)
		if err != nil {
			fmt.Fprintf(os.Stderr, "s4dbench: %v\n", err)
			return 1
		}
		if err := bench.EmitHitRateJSON(f, cfg, os.Stderr); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "s4dbench: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "s4dbench: %v\n", err)
			return 1
		}
		fmt.Printf("s4dbench: wrote %s\n", *benchHit)
		return 0
	}

	if *benchRecov != "" {
		f, err := os.Create(*benchRecov)
		if err != nil {
			fmt.Fprintf(os.Stderr, "s4dbench: %v\n", err)
			return 1
		}
		if err := bench.EmitRecoveryJSON(f, cfg, os.Stderr); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "s4dbench: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "s4dbench: %v\n", err)
			return 1
		}
		fmt.Printf("s4dbench: wrote %s\n", *benchRecov)
		return 0
	}

	if *benchJSON != "" {
		f, err := os.Create(*benchJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "s4dbench: %v\n", err)
			return 1
		}
		if err := bench.EmitJSON(f, cfg, os.Stderr); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "s4dbench: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "s4dbench: %v\n", err)
			return 1
		}
		fmt.Printf("s4dbench: wrote %s\n", *benchJSON)
		return 0
	}

	var selected []bench.Experiment
	if *expFlag == "all" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			e, ok := bench.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "s4dbench: unknown experiment %q (try -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}

	fmt.Printf("s4dbench: scale=%.4g ranks=%d experiments=%d\n\n", cfg.Scale, cfg.Ranks, len(selected))
	for _, e := range selected {
		start := time.Now()
		table, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "s4dbench: %s: %v\n", e.ID, err)
			return 1
		}
		fmt.Println(table.String())
		fmt.Printf("(%s finished in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return 0
}
