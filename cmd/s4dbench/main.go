// Command s4dbench regenerates the paper's tables and figures (and the
// DESIGN.md ablations) on the simulated testbed.
//
// Usage:
//
//	s4dbench [-exp id[,id...]] [-scale f] [-ranks n] [-parallel n] [-full] [-list]
//
// By default every experiment runs at the quick scale (~1/250 of the
// paper's data volume, all ratios preserved). -full uses the published
// sizes and process counts; expect a long runtime.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"s4dcache/internal/bench"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		scale    = flag.Float64("scale", 0, "file-size scale factor (0 = quick default)")
		ranks    = flag.Int("ranks", 0, "base process count (0 = scale default)")
		parallel = flag.Int("parallel", 0, "experiment cells simulated concurrently (0 = GOMAXPROCS)")
		full     = flag.Bool("full", false, "use the paper's published sizes (slow)")
		listOnly = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *listOnly {
		for _, e := range bench.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return 0
	}

	cfg := bench.Quick()
	if *full {
		cfg = bench.Paper()
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *ranks > 0 {
		cfg.Ranks = *ranks
	}
	cfg.Parallel = *parallel

	var selected []bench.Experiment
	if *expFlag == "all" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			e, ok := bench.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "s4dbench: unknown experiment %q (try -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}

	fmt.Printf("s4dbench: scale=%.4g ranks=%d experiments=%d\n\n", cfg.Scale, cfg.Ranks, len(selected))
	for _, e := range selected {
		start := time.Now()
		table, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "s4dbench: %s: %v\n", e.ID, err)
			return 1
		}
		fmt.Println(table.String())
		fmt.Printf("(%s finished in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return 0
}
