// Command iosig runs a workload with tracing enabled and prints the
// IOSIG-style analyses of paper reference [33]: the DServer/CServer
// request distribution (Table III) and per-server sequentiality.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"s4dcache/internal/cluster"
	"s4dcache/internal/iotrace"
	"s4dcache/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		procs    = flag.Int("procs", 8, "number of MPI processes")
		fileSize = flag.Int64("filesize", 256<<20, "per-instance shared file size")
		reqSize  = flag.Int64("req", 16<<10, "request size in bytes")
		window   = flag.Duration("window", 0, "analysis window length (0 = whole run)")
		from     = flag.Duration("from", 0, "analysis window start")
		binWidth = flag.Duration("bins", time.Second, "throughput time-series bin width")
		savePath = flag.String("save", "", "write the trace to this file after the run")
		loadPath = flag.String("load", "", "analyze an existing trace file instead of running a workload")
	)
	flag.Parse()

	var rec *iotrace.Recorder
	if *loadPath != "" {
		rec = iotrace.NewRecorder()
		f, err := os.Open(*loadPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iosig: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := rec.Load(f); err != nil {
			fmt.Fprintf(os.Stderr, "iosig: %v\n", err)
			return 1
		}
		fmt.Printf("iosig: loaded %d events from %s\n", rec.Len(), *loadPath)
	} else {
		mix := workload.MixedIORConfig{
			Instances: 10, RandomInstances: 4, Ranks: *procs,
			FileSize: *fileSize, RequestSize: *reqSize, Seed: 42,
		}
		params := cluster.Default()
		params.CacheCapacity = mix.DataSize() / 5
		params.Trace = true
		tb, err := cluster.NewS4D(params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iosig: %v\n", err)
			return 1
		}
		comm, err := tb.Comm(*procs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iosig: %v\n", err)
			return 1
		}
		finished := false
		if err := workload.RunMixed(comm, mix, true, func(workload.Result) { finished = true }); err != nil {
			fmt.Fprintf(os.Stderr, "iosig: %v\n", err)
			return 1
		}
		tb.Eng.RunWhile(func() bool { return !finished })
		tb.Close()
		rec = tb.Recorder
		fmt.Printf("iosig: mixed IOR write pass, %d procs, %d B requests\n", *procs, *reqSize)
	}

	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iosig: %v\n", err)
			return 1
		}
		if err := rec.Save(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "iosig: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "iosig: %v\n", err)
			return 1
		}
		fmt.Printf("iosig: saved %d events to %s\n", rec.Len(), *savePath)
	}

	to := time.Duration(0)
	if *window > 0 {
		to = *from + *window
	}
	d := rec.Distribute(*from, to)
	fmt.Printf("\nrequest distribution (window %v..%v, %d events):\n", *from, to, rec.Len())
	fmt.Printf("  DServers: %5.1f%% of sub-requests, %5.1f%% of bytes\n",
		d.RequestShare("OPFS")*100, d.ByteShare("OPFS")*100)
	fmt.Printf("  CServers: %5.1f%% of sub-requests, %5.1f%% of bytes\n",
		d.RequestShare("CPFS")*100, d.ByteShare("CPFS")*100)
	fmt.Printf("\nsequentiality:\n")
	fmt.Printf("  DServers: %.2f\n", rec.Sequentiality("OPFS"))
	fmt.Printf("  CServers: %.2f\n", rec.Sequentiality("CPFS"))

	fmt.Printf("\nthroughput series (bin %v):\n", *binWidth)
	for _, b := range rec.Throughput("", *binWidth) {
		if b.Requests == 0 {
			continue
		}
		fmt.Printf("  t=%-10v %8.1f MB/s  (%d sub-requests)\n",
			b.Start, float64(b.Bytes)/1e6/binSeconds(*binWidth), b.Requests)
	}
	return 0
}

func binSeconds(d time.Duration) float64 {
	s := d.Seconds()
	if s <= 0 {
		return 1
	}
	return s
}
