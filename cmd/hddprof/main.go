// Command hddprof performs the offline seek-curve profiling step of the
// cost model (paper §III.B, reference [28]): it measures the simulated
// HDD's startup time as a function of seek distance and prints the
// derived F(d) curve.
package main

import (
	"flag"
	"fmt"
	"os"

	"s4dcache/internal/device"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		samples = flag.Int("samples", 24, "number of log-spaced probe distances")
		trials  = flag.Int("trials", 32, "trials averaged per distance")
		probe   = flag.Int64("probe", 4<<10, "probe request size in bytes")
	)
	flag.Parse()

	params := device.DefaultHDDParams()
	hdd := device.NewHDD(params)
	curve, err := device.ProfileSeekCurve(hdd, device.ProfileConfig{
		Samples: *samples, TrialsPerSample: *trials, ProbeSize: *probe,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hddprof: %v\n", err)
		return 1
	}
	fmt.Printf("hddprof: %s, rotation %v, max seek %v, %0.f MB/s\n",
		hdd.Name(), params.FullRotation, params.MaxSeek, params.Bandwidth/1e6)
	fmt.Printf("%-16s %-14s %s\n", "distance(B)", "F(d)", "true-seek")
	for _, p := range curve.Points() {
		fmt.Printf("%-16d %-14v %v\n", p.Distance, p.Time, hdd.SeekTime(p.Distance))
	}
	return 0
}
