// Command s4dreport runs every experiment and writes EXPERIMENTS.md: the
// paper-vs-measured record for each table and figure, at the chosen scale.
//
// Usage:
//
//	s4dreport [-o EXPERIMENTS.md] [-scale f] [-ranks n] [-parallel n] [-full]
//	          [-bench-json file] [-cpuprofile file] [-memprofile file] [-trace file]
//	          [-mutexprofile file] [-blockprofile file]
//
// -bench-json skips the markdown report and instead runs the hot-path
// micro-benchmarks plus the experiment suite, writing a machine-readable
// BENCH_*.json perf report (the same report s4dbench -bench-json emits).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"s4dcache/internal/bench"
	"s4dcache/internal/profiling"
)

// paperBaseline records, per experiment, what the paper reports and how
// the reproduction is expected to compare (shape, not absolute numbers).
var paperBaseline = map[string][2]string{
	"fig1": {
		"Random read bandwidth less than half of sequential for 4–32 KB requests; comparable beyond 4 MB (8 HDD servers, 16 processes, 16 GB file).",
		"The random/sequential ratio starts well below 0.5 at 4 KB and climbs monotonically to 1.0; the crossover lands around 1 MB at quick scale (smaller files mean shorter in-file seeks than the paper's 16 GB testbed).",
	},
	"fig6": {
		"Write gains +51.3% (8 KB), +49.1% (16 KB), +39.2% (32 KB), +32.5% (64 KB), ~0% (4 MB); read gains larger, up to +184.1% (8 KB) on second runs.",
		"Write gains decay from ~+100% (8 KB) through ~+30% (64 KB) to exactly 0% at 4 MB; read gains exceed write gains at 16–64 KB, matching the paper's read>write ordering. The 4 MB row confirms the cost model routes large requests to the DServers.",
	},
	"table3": {
		"At 16 KB: 16.3% DServers / 83.7% CServers. At 4 MB: 100% / 0%. DServers mostly see sequential requests.",
		"At 16 KB the CServers absorb the vast majority of bytes during a random instance; at 4 MB the split is exactly 100/0. DServer traffic during the window is the sequential bulk plus Rebuilder write-backs.",
	},
	"fig7": {
		"+35.4% to +49.5% write improvement across 16–128 processes; absolute bandwidth drops as contention grows.",
		"Write gains stay in the same band across the (scaled) process sweep and shrink mildly at the largest count; read gains are larger throughout, as in Fig. 7(b).",
	},
	"table4": {
		"0 GB→58.0 MB/s, 2 GB→69.3 (+19.5%), 4 GB→86.2 (+48.4%), 6 GB→90.9 (+56.6%); gains plateau once most random data fits (≥4 GB of a 20 GB working set).",
		"Throughput rises steeply as soon as the cache can hold the hot random data and then flattens with additional capacity — the diminishing-returns plateau the paper reports above 4 GB. At quick scale the knee sits slightly earlier because the scaled random working set is a smaller multiple of the capacity steps.",
	},
	"fig8": {
		"Write bandwidth improved +20.7% to +60.1% from 1 to 6 CServers; improvement plateaus above four servers.",
		"Gains grow with CServer count and flatten at 4–6 servers, because only the random fraction of the workload can benefit (paper's bound argument).",
	},
	"fig9": {
		"HPIO gains +18%, +28%, +30%, +33% as region spacing grows 0→4 KB (mostly flat after 1 KB).",
		"Gains land in the paper's +15–30% band at every spacing — noticeably below the IOR gains, as the paper stresses ('not as random as the IOR benchmark'). The mild monotone trend is washed out at quick scale, where per-request network overhead dominates the small hole-skipping cost.",
	},
	"fig10": {
		"MPI-Tile-IO: +21–33% writes, +18–31% reads across 100–400 processes; smaller than IOR because nested-stride tiles retain locality.",
		"Gains are positive but clearly below the IOR numbers — the tile rows are large contiguous runs, so the cost model admits less. Reads again beat writes.",
	},
	"fig11": {
		"With every request intentionally missing the cache, throughput matches the stock system — the overhead is almost unobservable.",
		"Stock and S4D-disabled throughputs agree to within rounding at every request size: the identification, CDT/DMT lookup and metadata machinery cost nothing measurable in I/O time.",
	},
	"meta": {
		"DMT entries are 24 bytes; with worst-case 4 KB requests the metadata overhead is ~0.6% of cache space — negligible.",
		"The measured entries-to-cached-bytes ratio lands at the analytic 0.59% bound.",
	},
	"ext-memcache": {
		"(paper's stated future work, §II.B) 'SSDs are a complement of memory cache and can be served as an extension of memory cache... The integration of memory cache and S4D-Cache will be an interesting topic for future study.'",
		"The three-tier stack behaves as the paper anticipates: the memory cache captures re-references at DRAM latency, S4D captures the capacity misses at flash latency, and the stock system stays HDD-bound. Each tier's addition is a strict improvement on this re-referencing workload.",
	},
	"ablation-admission": {
		"(beyond the paper) Selectivity is the headline design choice: Algorithm 1 line 3 admits only CDT-listed requests.",
		"Selective admission beats cache-everything: funneling the sequential bulk through 4 SSD servers wastes the DServers' aggregate bandwidth.",
	},
	"ablation-policy": {
		"(beyond the paper) §I: 'Conventionally, a cache uses data locality principals... the selection algorithm of S4D-Cache is derived from the randomness of data accesses, not the data access locality.' Hystor [15] is the locality-driven alternative.",
		"The benefit-model admission clearly beats second-touch (locality) admission on the mixed workload: one-touch random requests — the HDD killers — exhibit no temporal locality, so the locality policy leaves most of them on the DServers.",
	},
	"ablation-lazy": {
		"(beyond the paper) §III.E argues lazy caching 'reduces the response time of read requests'.",
		"Lazy mode keeps first-run reads at stock speed and reaches full cache speed on the second run; eager mode pays population cost inside the first run for the same warm speed.",
	},
	"ablation-dmtsync": {
		"(beyond the paper) §III.D requires synchronous DMT persistence to survive power failures.",
		"Charging every commit synchronously costs a noticeable slice of small-write throughput; the paper's Berkeley DB batches and caches commits (\"most of the operations can be done in memory\", §V.E.2), which the uncharged row represents. The truth lies between the rows, closer to uncharged.",
	},
	"ablation-rebuild": {
		"(beyond the paper) §III.F triggers the Rebuilder periodically.",
		"Too long a period starves admission (dirty data cannot be reclaimed; admit failures soar); very short periods add low-priority interference. A sub-second period is the sweet spot.",
	},
	"ablation-collective": {
		"(beyond the paper) §II.A: 'S4D-Cache can use not only these techniques [List I/O, data sieving, collective I/O] for its underlying parallel file systems but also utilize SSDs' characteristics.'",
		"S4D helps most under List I/O (small noncontiguous requests), adds nothing once two-phase collective I/O has merged the pattern into large sequential runs (none of which are critical), and leaves data sieving's read-modify-write overhead unchanged — the cache composes with, rather than replaces, the classic middleware optimizations.",
	},
	"faults": {
		"(beyond the paper) §III.D stores the DMT synchronously 'to tolerate such failures as power failure'; the paper does not evaluate server failures.",
		"Under injected CServer faults the system keeps serving: transient I/O errors are absorbed by capped-backoff retries, crashed-CServer traffic fails over to the DServers (clean mappings are read around, dirty ones deferred to the restart or written off as dirty-lost), and throughput degrades rather than collapses. The fault-free row is byte-identical to a testbed built without fault state. All counters are zero on fault-free runs, so fault-free reports are unchanged.",
	},
	"ablation-tableii": {
		"(beyond the paper) Table II's E = ⌊(f+r)/str⌋ over-counts one stripe when a request ends exactly on a stripe boundary.",
		"Exact and verbatim formulas produce near-identical throughput and admission shares even on stripe-aligned traffic — the published approximation is harmless.",
	},
	"hitrate": {
		"(beyond the paper) §III.C reclaims cache space with clean-first LRU; modern policy work (S3-FIFO, SOSP'23; TinyLFU, TOS'17) argues FIFO ghosts and frequency sketches beat pure recency on skewed streams.",
		"On the zipfian separator column both S3-FIFO and TinyLFU beat clean-LRU's hit rate — the probationary queue and the admission gate keep the scan-polluted hot set resident where recency churns — and they do it with an order of magnitude fewer evictions. On the paper's own mostly-uniform workloads the gated policies still lead, with TinyLFU's sketch the strongest overall.",
	},
	"hitrate-shift": {
		"(beyond the paper) §III.B identifies critical data online per-request; the natural extension is identifying the workload itself online and retuning the cache policy live.",
		"No static policy wins every phase: the gated policies take the zipf re-read phases, clean-LRU the cold write burst against a full cache. The adaptive engine's characterizer swaps policies at the phase boundaries (write-heavy → clean-LRU, one-touch scan → TinyLFU) and its overall cache share beats every static row.",
	},
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		out       = flag.String("o", "EXPERIMENTS.md", "output file")
		scale     = flag.Float64("scale", 0, "file-size scale factor (0 = quick default)")
		ranks     = flag.Int("ranks", 0, "base process count")
		parallel  = flag.Int("parallel", 0, "experiment cells simulated concurrently (0 = GOMAXPROCS)")
		full      = flag.Bool("full", false, "use the paper's published sizes (slow)")
		benchJSON = flag.String("bench-json", "", "write a machine-readable perf report to this file and exit")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
		tracePath = flag.String("trace", "", "write a runtime execution trace to this file")
		mutexProf = flag.String("mutexprofile", "", "write a pprof mutex-contention profile to this file at exit")
		blockProf = flag.String("blockprofile", "", "write a pprof goroutine-blocking profile to this file at exit")
	)
	flag.Parse()

	stopProf, err := profiling.Config{
		CPUProfile:   *cpuProf,
		MemProfile:   *memProf,
		Trace:        *tracePath,
		MutexProfile: *mutexProf,
		BlockProfile: *blockProf,
	}.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "s4dreport: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "s4dreport: %v\n", err)
		}
	}()

	cfg := bench.Quick()
	if *full {
		cfg = bench.Paper()
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *ranks > 0 {
		cfg.Ranks = *ranks
	}
	cfg.Parallel = *parallel

	if *benchJSON != "" {
		f, err := os.Create(*benchJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "s4dreport: %v\n", err)
			return 1
		}
		if err := bench.EmitJSON(f, cfg, os.Stderr); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "s4dreport: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "s4dreport: %v\n", err)
			return 1
		}
		fmt.Printf("s4dreport: wrote %s\n", *benchJSON)
		return 0
	}

	var b strings.Builder
	fmt.Fprintf(&b, "# EXPERIMENTS — paper vs. measured\n\n")
	fmt.Fprintf(&b, "Reproduction record for *S4D-Cache: Smart Selective SSD Cache for\n")
	fmt.Fprintf(&b, "Parallel I/O Systems* (He, Sun, Feng — ICDCS 2014). Every table and\n")
	fmt.Fprintf(&b, "figure of the paper's evaluation (§V) is regenerated on the simulated\n")
	fmt.Fprintf(&b, "testbed by `cmd/s4dbench` / `go test -bench . -benchtime=1x`; this file\n")
	fmt.Fprintf(&b, "is written by `cmd/s4dreport`.\n\n")
	fmt.Fprintf(&b, "Run configuration: scale=%.4g (fraction of the paper's file sizes, all\n", cfg.Scale)
	fmt.Fprintf(&b, "request:stripe:file:cache ratios preserved), base processes=%d.\n", cfg.Ranks)
	fmt.Fprintf(&b, "Hardware models and calibration are described in DESIGN.md §5. The\n")
	fmt.Fprintf(&b, "simulation is deterministic: identical runs reproduce identical numbers.\n")
	fmt.Fprintf(&b, "Absolute MB/s are *not* expected to match the 2014 testbed; the shapes\n")
	fmt.Fprintf(&b, "(who wins, by what factor, where crossovers/plateaus fall) are the\n")
	fmt.Fprintf(&b, "reproduction target.\n\n")
	workers := cfg.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(&b, "Experiment cells run on a worker pool (`-parallel`, default\n")
	fmt.Fprintf(&b, "`GOMAXPROCS`; this run used %d worker(s)). The tables are\n", workers)
	fmt.Fprintf(&b, "byte-identical for every `-parallel` setting — only the wall-clock\n")
	fmt.Fprintf(&b, "noted per experiment changes.\n\n---\n\n")

	suiteStart := time.Now()
	for _, e := range bench.All() {
		start := time.Now()
		table, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "s4dreport: %s: %v\n", e.ID, err)
			return 1
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		fmt.Fprintf(&b, "## %s — %s\n\n", e.ID, e.Title)
		if base, ok := paperBaseline[e.ID]; ok {
			fmt.Fprintf(&b, "**Paper:** %s\n\n", base[0])
		}
		fmt.Fprintf(&b, "```\n%s```\n\n", table.String())
		if base, ok := paperBaseline[e.ID]; ok {
			fmt.Fprintf(&b, "**Measured:** %s\n\n", base[1])
		}
		fmt.Fprintf(&b, "*(regenerated in %v; `go run ./cmd/s4dbench -exp %s`)*\n\n", elapsed, e.ID)
		fmt.Fprintf(os.Stderr, "s4dreport: %s done in %v\n", e.ID, elapsed)
	}
	fmt.Fprintf(&b, "---\n\nFull suite wall-clock: %v with %d worker(s).\n",
		time.Since(suiteStart).Round(time.Second), workers)

	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "s4dreport: write %s: %v\n", *out, err)
		return 1
	}
	fmt.Printf("s4dreport: wrote %s\n", *out)
	return 0
}
