// Command tileiosim runs an MPI-Tile-IO-style benchmark (paper reference
// [32]) on the simulated testbed: a dense 2-D dataset accessed tile by
// tile with nested strides.
package main

import (
	"flag"
	"fmt"
	"os"

	"s4dcache/internal/cluster"
	"s4dcache/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		procs    = flag.Int("procs", 100, "number of MPI processes (tiles)")
		ex       = flag.Int("ex", 10, "elements per tile in X")
		ey       = flag.Int("ey", 10, "elements per tile in Y")
		elemSize = flag.Int64("elem", 32<<10, "element size in bytes")
		read     = flag.Bool("read", false, "read instead of write")
		stock    = flag.Bool("stock", false, "disable S4D-Cache (baseline)")
	)
	flag.Parse()

	cfg := workload.TileIOConfig{
		Ranks: *procs, ElementsX: *ex, ElementsY: *ey, ElementSize: *elemSize,
	}
	dataSize := int64(*procs) * int64(*ex) * int64(*ey) * *elemSize
	params := cluster.Default()
	params.CacheCapacity = dataSize / 5

	var tb *cluster.Testbed
	var err error
	if *stock {
		tb, err = cluster.NewStock(params)
	} else {
		tb, err = cluster.NewS4D(params)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tileiosim: %v\n", err)
		return 1
	}
	comm, err := tb.Comm(*procs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tileiosim: %v\n", err)
		return 1
	}
	var res workload.Result
	finished := false
	if err := workload.RunTileIO(comm, cfg, !*read, func(r workload.Result) { res = r; finished = true }); err != nil {
		fmt.Fprintf(os.Stderr, "tileiosim: %v\n", err)
		return 1
	}
	tb.Eng.RunWhile(func() bool { return !finished })
	tb.Close()

	tx, ty := cfg.Grid()
	fmt.Printf("tileiosim: %d procs (%dx%d grid), %dx%d elements x %d B\n",
		*procs, tx, ty, *ex, *ey, *elemSize)
	fmt.Printf("  virtual time : %v\n", res.Elapsed())
	fmt.Printf("  throughput   : %.1f MB/s\n", res.ThroughputMBps())
	if tb.S4D != nil {
		st := tb.S4D.Stats()
		fmt.Printf("  cache shares : write %.1f%%, read %.1f%%\n",
			st.CacheWriteShare()*100, st.CacheReadShare()*100)
	}
	return 0
}
