package s4dcache_test

import (
	"bytes"
	"fmt"
	"log"

	"s4dcache"
)

// Example demonstrates the selective cache end to end: a small random
// write is identified as performance-critical and absorbed by the SSD
// CServers; a sequential write of the same size stays on the HDD
// DServers. The simulation is deterministic, so the output is exact.
func Example() {
	sys, err := s4dcache.New(s4dcache.SmallTestbed())
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	f := sys.Open("dataset")
	payload := bytes.Repeat([]byte{0xCD}, 16<<10)

	// A 16KB write far into the file: random → critical → cached.
	if err := f.WriteAt(0, payload, 1<<30); err != nil {
		log.Fatal(err)
	}
	// A 16KB write at offset 0, then its sequential continuation: the
	// continuation has distance 0 → not critical → DServers.
	if err := f.WriteAt(1, payload, 0); err != nil {
		log.Fatal(err)
	}
	if err := f.WriteAt(1, payload, 16<<10); err != nil {
		log.Fatal(err)
	}

	st := sys.Stats()
	fmt.Printf("admissions: %d\n", st.Admissions)
	fmt.Printf("mappings:   %d\n", st.DMTEntries)

	// Reads are transparent and always return the written bytes,
	// wherever they live.
	got := make([]byte, 16<<10)
	if err := f.ReadAt(2, got, 1<<30); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back:  %v\n", bytes.Equal(got, payload))

	// Output:
	// admissions: 1
	// mappings:   1
	// read back:  true
}

// ExampleSystem_RunIOR shows the built-in IOR workload helper: the same
// random probe set runs twice; the second run is served by the cache
// after the Rebuilder's lazy fetches.
func ExampleSystem_RunIOR() {
	sys, err := s4dcache.New(s4dcache.SmallTestbed())
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Bulk-load, then probe twice.
	if _, err := sys.RunIOR("data", 8<<20, 1<<20, false, true); err != nil {
		log.Fatal(err)
	}
	first, err := sys.RunIOR("data", 8<<20, 16<<10, true, false)
	if err != nil {
		log.Fatal(err)
	}
	sys.DrainRebuild()
	second, err := sys.RunIOR("data", 8<<20, 16<<10, true, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second run faster: %v\n", second.ThroughputMBps > first.ThroughputMBps)
	// Output:
	// second run faster: true
}
